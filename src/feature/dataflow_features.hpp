#pragma once

/**
 * @file dataflow_features.hpp
 * Pruner's temporal dataflow features (paper Section 4.2, Figure 4).
 *
 * The multi-tiling pattern is abstracted as a sequence of data-block
 * movements across the memory hierarchy: accumulator initialization, one
 * global->shared stage per cached input, the shared->register compute
 * step, and the register->global write-back of the (possibly fused)
 * epilogue. Each movement is a 23-dimensional row
 * (compute:1 | mem access:21 | alloc size:1); sequences are zero-padded to
 * a fixed length, which also covers element-wise operators exactly as the
 * paper does.
 */

#include <span>

#include "core/symbols.hpp"
#include "device/device_spec.hpp"
#include "ir/task.hpp"
#include "nn/matrix.hpp"
#include "nn/workspace.hpp"
#include "sched/schedule.hpp"

namespace pruner {

/** Width of one dataflow step row (compute:1 | mem:21 | alloc:1). */
constexpr size_t kDataflowFeatureDim = 23;

/** Fixed (padded) number of dataflow steps per program. */
constexpr size_t kDataflowSteps = 10;

/** Extract the temporal dataflow feature matrix: [kDataflowSteps, 23]. */
Matrix extractDataflowFeatures(const SubgraphTask& task, const Schedule& sch,
                               const DeviceSpec& device);

/** Write one candidate's kDataflowSteps rows (from its already-extracted
 *  symbols) into @p out at rows [row0, row0 + kDataflowSteps), which must
 *  exist and be zero-filled (the padding rows stay zero). */
void writeDataflowFeatureRows(const SymbolSet& sym, const SubgraphTask& task,
                              const Schedule& sch, const DeviceSpec& device,
                              Matrix& out, size_t row0);

/** Pack every candidate's dataflow rows into @p out
 *  ([n * kDataflowSteps, 23], reshaped in place) with fixed-stride
 *  segments recorded in @p segs. */
void extractDataflowFeaturesBatch(const SubgraphTask& task,
                                  std::span<const Schedule> candidates,
                                  const DeviceSpec& device, Matrix& out,
                                  SegmentTable& segs);

} // namespace pruner
