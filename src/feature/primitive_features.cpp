#include "feature/primitive_features.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace pruner {

void
writePrimitiveFeatureRows(const SubgraphTask& task, const Schedule& sch,
                          Matrix& out, size_t row0,
                          std::vector<SchedulePrimitive>& scratch)
{
    PRUNER_CHECK(out.cols() == kPrimitiveFeatureDim);
    PRUNER_CHECK(row0 + kPrimitiveSteps <= out.rows());
    sch.primitiveSequenceInto(task, scratch);
    const size_t n = std::min(scratch.size(), kPrimitiveSteps);
    for (size_t i = 0; i < n; ++i) {
        const auto& prim = scratch[i];
        double* f = out.row(row0 + i);
        size_t k = 0;
        // Primitive kind one-hot (5).
        f[k + static_cast<size_t>(prim.kind)] = 1.0;
        k += 5;
        // Axis ordinal one-hot (up to 6 axes).
        const size_t axis = std::min<size_t>(prim.axis, 5);
        f[k + axis] = 1.0;
        k += 6;
        // Factor / argument encodings — the only schedule-dependent values.
        f[k++] = std::log1p(static_cast<double>(prim.arg));
        f[k++] = static_cast<double>(prim.arg % 2 == 0);
        f[k++] = static_cast<double>(prim.arg) / 64.0;
        // Position encoding.
        f[k++] = static_cast<double>(i) / kPrimitiveSteps;
        f[k++] = i % 2 == 0 ? 1.0 : 0.0;
        PRUNER_CHECK(k == kPrimitiveFeatureDim);
    }
}

Matrix
extractPrimitiveFeatures(const SubgraphTask& task, const Schedule& sch)
{
    Matrix feat(kPrimitiveSteps, kPrimitiveFeatureDim);
    std::vector<SchedulePrimitive> seq;
    writePrimitiveFeatureRows(task, sch, feat, 0, seq);
    return feat;
}

void
extractPrimitiveFeaturesBatch(const SubgraphTask& task,
                              std::span<const Schedule> candidates,
                              Matrix& out, SegmentTable& segs)
{
    static thread_local std::vector<SchedulePrimitive> scratch;
    out.resize(0, kPrimitiveFeatureDim);
    segs.reset();
    for (const Schedule& sch : candidates) {
        const size_t row0 = out.rows();
        out.resize(row0 + kPrimitiveSteps, kPrimitiveFeatureDim);
        writePrimitiveFeatureRows(task, sch, out, row0, scratch);
        segs.append(kPrimitiveSteps);
    }
}

} // namespace pruner
