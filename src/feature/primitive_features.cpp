#include "feature/primitive_features.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace pruner {

Matrix
extractPrimitiveFeatures(const SubgraphTask& task, const Schedule& sch)
{
    Matrix feat(kPrimitiveSteps, kPrimitiveFeatureDim);
    const auto seq = sch.primitiveSequence(task);
    const size_t n = std::min(seq.size(), kPrimitiveSteps);
    for (size_t i = 0; i < n; ++i) {
        const auto& prim = seq[i];
        double* f = feat.row(i);
        size_t k = 0;
        // Primitive kind one-hot (5).
        f[k + static_cast<size_t>(prim.kind)] = 1.0;
        k += 5;
        // Axis ordinal one-hot (up to 6 axes).
        const size_t axis = std::min<size_t>(prim.axis, 5);
        f[k + axis] = 1.0;
        k += 6;
        // Factor / argument encodings — the only schedule-dependent values.
        f[k++] = std::log1p(static_cast<double>(prim.arg));
        f[k++] = static_cast<double>(prim.arg % 2 == 0);
        f[k++] = static_cast<double>(prim.arg) / 64.0;
        // Position encoding.
        f[k++] = static_cast<double>(i) / kPrimitiveSteps;
        f[k++] = i % 2 == 0 ? 1.0 : 0.0;
        PRUNER_CHECK(k == kPrimitiveFeatureDim);
    }
    return feat;
}

} // namespace pruner
