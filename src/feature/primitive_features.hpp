#pragma once

/**
 * @file primitive_features.hpp
 * TLP-style schedule-primitive sequence features.
 *
 * TLP encodes the high-level schedule primitives (Split / Reorder /
 * CacheRead / Annotate / Bind) as mostly one-hot rows; as the paper points
 * out, only a tiny fraction of values (the split factors) differ between
 * schedules of the same task, which is precisely what makes the model
 * data-hungry. We reproduce that property deliberately.
 */

#include <span>
#include <vector>

#include "ir/task.hpp"
#include "nn/matrix.hpp"
#include "nn/workspace.hpp"
#include "sched/schedule.hpp"

namespace pruner {

/** Width of one primitive row. */
constexpr size_t kPrimitiveFeatureDim = 16;

/** Fixed (padded) primitive-sequence length. */
constexpr size_t kPrimitiveSteps = 28;

/** Extract the primitive-sequence features: [kPrimitiveSteps, 16]. */
Matrix extractPrimitiveFeatures(const SubgraphTask& task,
                                const Schedule& sch);

/** Write one candidate's kPrimitiveSteps rows into @p out at
 *  [row0, row0 + kPrimitiveSteps) (must exist, zero-filled); @p scratch
 *  holds the primitive sequence between candidates (capacity reused). */
void writePrimitiveFeatureRows(const SubgraphTask& task, const Schedule& sch,
                               Matrix& out, size_t row0,
                               std::vector<SchedulePrimitive>& scratch);

/** Pack every candidate's primitive rows into @p out
 *  ([n * kPrimitiveSteps, 16], reshaped in place) with fixed-stride
 *  segments recorded in @p segs. */
void extractPrimitiveFeaturesBatch(const SubgraphTask& task,
                                   std::span<const Schedule> candidates,
                                   Matrix& out, SegmentTable& segs);

} // namespace pruner
