#pragma once

/**
 * @file primitive_features.hpp
 * TLP-style schedule-primitive sequence features.
 *
 * TLP encodes the high-level schedule primitives (Split / Reorder /
 * CacheRead / Annotate / Bind) as mostly one-hot rows; as the paper points
 * out, only a tiny fraction of values (the split factors) differ between
 * schedules of the same task, which is precisely what makes the model
 * data-hungry. We reproduce that property deliberately.
 */

#include "ir/task.hpp"
#include "nn/matrix.hpp"
#include "sched/schedule.hpp"

namespace pruner {

/** Width of one primitive row. */
constexpr size_t kPrimitiveFeatureDim = 16;

/** Fixed (padded) primitive-sequence length. */
constexpr size_t kPrimitiveSteps = 28;

/** Extract the primitive-sequence features: [kPrimitiveSteps, 16]. */
Matrix extractPrimitiveFeatures(const SubgraphTask& task,
                                const Schedule& sch);

} // namespace pruner
