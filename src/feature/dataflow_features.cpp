#include "feature/dataflow_features.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/penalty.hpp"
#include "core/symbols.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace pruner {

namespace {

double
log1pSafe(double v)
{
    return std::log1p(std::max(v, 0.0));
}

/** Flow directions across the hierarchy. */
enum Flow : size_t {
    kInit = 0,    ///< accumulator initialization in registers
    kL2toL1 = 1,  ///< global -> shared staging
    kL1toL0 = 2,  ///< shared -> register compute
    kL0toL2 = 3,  ///< register -> global write-back
    kL2toL0 = 4,  ///< global -> register direct load (no staging)
    kL0toL0 = 5,  ///< register-resident epilogue
};

/** Access types. */
enum Access : size_t { kRead = 0, kWrite = 1, kReadWrite = 2 };

struct StepWriter
{
    Matrix* m;
    size_t row0 = 0; ///< this candidate's first row in the packed matrix
    size_t step = 0;

    /** Emit one 23-dim row. */
    void
    emit(double compute_density, Flow flow, double bytes, double reuse,
         double contiguity, double vec, double unroll, double trans_dim,
         double stride, Access access, double l0_alloc, double l1_alloc,
         double l2_foot, double threads, double blocks, double alloc_size)
    {
        if (step >= kDataflowSteps) {
            return; // truncate overly deep movement chains
        }
        double* f = m->row(row0 + step++);
        size_t k = 0;
        f[k++] = compute_density;              // [0] compute
        f[k + static_cast<size_t>(flow)] = 1.0; // [1..6] flow one-hot
        k += 6;
        f[k++] = log1pSafe(bytes);             // [7]
        f[k++] = reuse;                        // [8]
        f[k++] = contiguity;                   // [9]
        f[k++] = vec;                          // [10]
        f[k++] = log1pSafe(unroll);            // [11]
        f[k++] = log1pSafe(trans_dim);         // [12]
        f[k++] = stride;                       // [13]
        f[k + static_cast<size_t>(access)] = 1.0; // [14..16]
        k += 3;
        f[k++] = log1pSafe(l0_alloc);          // [17]
        f[k++] = log1pSafe(l1_alloc);          // [18]
        f[k++] = log1pSafe(l2_foot);           // [19]
        f[k++] = log1pSafe(threads);           // [20]
        f[k++] = log1pSafe(blocks);            // [21]
        f[k++] = log1pSafe(alloc_size);        // [22] alloc size
        PRUNER_CHECK(k == kDataflowFeatureDim);
    }
};

} // namespace

Matrix
extractDataflowFeatures(const SubgraphTask& task, const Schedule& sch,
                        const DeviceSpec& device)
{
    Matrix feat(kDataflowSteps, kDataflowFeatureDim);
    const SymbolSet sym = extractSymbols(task, sch);
    writeDataflowFeatureRows(sym, task, sch, device, feat, 0);
    return feat;
}

void
writeDataflowFeatureRows(const SymbolSet& sym, const SubgraphTask& task,
                         const Schedule& sch, const DeviceSpec& device,
                         Matrix& out, size_t row0)
{
    PRUNER_CHECK(out.cols() == kDataflowFeatureDim);
    PRUNER_CHECK(row0 + kDataflowSteps <= out.rows());
    StepWriter w{&out, row0};

    const double bytes_per_elem = dtypeBytes(task.dtype);
    const double threads = sym.s4_threads;
    const double blocks = sym.s6_blocks;
    const double vec = sch.vectorLen();
    const double unroll = sch.unroll();
    const double out_reg_tile = static_cast<double>(sch.regTilePoints());

    // Step 1: accumulator init (C.local = 0).
    w.emit(/*compute_density=*/0.0, kInit, /*bytes=*/0.0, /*reuse=*/1.0,
           /*contiguity=*/1.0, vec, unroll, /*trans_dim=*/1.0,
           /*stride=*/1.0, kWrite, out_reg_tile, sym.s3_l1_alloc,
           /*l2_foot=*/0.0, threads, blocks, out_reg_tile);

    // One step per global->shared (or global->register) input movement.
    for (const auto& stmt : sym.statements) {
        if (stmt.kind != StatementSymbols::Kind::SharedLoad) {
            continue;
        }
        const auto& tensor = task.tensors[stmt.tensor];
        const double unique =
            static_cast<double>(tensor.numElements(task)) *
            tensor.footprint_scale;
        const double reuse =
            unique > 0.0 ? stmt.s5_traffic / unique : 1.0;
        const double contiguity = statementP2m(stmt, device);
        w.emit(/*compute_density=*/0.0,
               sch.cacheShared() ? kL2toL1 : kL2toL0,
               stmt.s5_traffic * bytes_per_elem, reuse, contiguity, vec,
               unroll, stmt.s7_trans_dim,
               static_cast<double>(task.conv_stride), kRead,
               sym.s1_l0_alloc, sym.s3_l1_alloc,
               unique * bytes_per_elem, threads, blocks, sym.s3_l1_alloc);
    }

    // Compute step: shared -> registers, FMA chain.
    for (const auto& stmt : sym.statements) {
        if (stmt.kind != StatementSymbols::Kind::Compute) {
            continue;
        }
        const double density =
            stmt.s8_flops / std::max(sym.s3_l1_alloc * blocks, 1.0);
        w.emit(log1pSafe(density), kL1toL0, /*bytes=*/0.0,
               /*reuse=*/out_reg_tile, /*contiguity=*/1.0, vec, unroll,
               /*trans_dim=*/1.0, /*stride=*/1.0, kReadWrite,
               sym.s1_l0_alloc, sym.s3_l1_alloc, /*l2_foot=*/0.0, threads,
               blocks, sym.s1_l0_alloc);
    }

    // Fused epilogue (register resident), if any.
    if (task.has_elementwise_tail) {
        w.emit(log1pSafe(task.tail_flops_per_output), kL0toL0,
               /*bytes=*/0.0, /*reuse=*/1.0, /*contiguity=*/1.0, vec,
               unroll, /*trans_dim=*/1.0, /*stride=*/1.0, kReadWrite,
               out_reg_tile, 0.0, 0.0, threads, blocks, out_reg_tile);
    }

    // Output write-back: registers -> global.
    for (const auto& stmt : sym.statements) {
        if (stmt.kind != StatementSymbols::Kind::OutputStore) {
            continue;
        }
        w.emit(/*compute_density=*/0.0, kL0toL2,
               stmt.s5_traffic * bytes_per_elem, /*reuse=*/1.0,
               statementP2m(stmt, device), vec, unroll, stmt.s7_trans_dim,
               /*stride=*/1.0, kWrite, sym.s1_l0_alloc, 0.0,
               stmt.s5_traffic * bytes_per_elem, threads, blocks,
               stmt.s5_traffic);
    }

    // Remaining rows stay zero (the paper's zero-padding for element-wise
    // operators and short movement chains).
}

void
appendOrAliasDataflowBlock(Matrix& out, SegmentTable& segs, size_t row0,
                           DataflowBlockIndex& seen)
{
    constexpr size_t kBlockDoubles = kDataflowSteps * kDataflowFeatureDim;
    const double* block = out.row(row0);
    // Bit-pattern hash (memcmp semantics: -0.0 != +0.0, NaNs compare by
    // payload — exactly the equality aliasing is sound under).
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (size_t e = 0; e < kBlockDoubles; ++e) {
        uint64_t bits;
        std::memcpy(&bits, &block[e], sizeof(bits));
        h = hashCombine(h, bits);
    }
    for (const auto& [hash, begin] : seen) {
        if (hash == h &&
            std::memcmp(out.row(begin), block,
                        kBlockDoubles * sizeof(double)) == 0) {
            out.resize(row0, kDataflowFeatureDim);
            segs.appendAlias(begin, kDataflowSteps);
            return;
        }
    }
    seen.emplace_back(h, row0);
    segs.append(kDataflowSteps);
}

void
extractDataflowFeaturesBatch(const SubgraphTask& task,
                             std::span<const Schedule> candidates,
                             const DeviceSpec& device, Matrix& out,
                             SegmentTable& segs)
{
    static thread_local SymbolSet sym;
    static thread_local DataflowBlockIndex seen;
    out.resize(0, kDataflowFeatureDim);
    segs.reset();
    seen.clear();
    for (const Schedule& sch : candidates) {
        extractSymbolsInto(task, sch, sym);
        const size_t row0 = out.rows();
        out.resize(row0 + kDataflowSteps, kDataflowFeatureDim);
        writeDataflowFeatureRows(sym, task, sch, device, out, row0);
        appendOrAliasDataflowBlock(out, segs, row0, seen);
    }
}

} // namespace pruner
