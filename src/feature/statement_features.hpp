#pragma once

/**
 * @file statement_features.hpp
 * Ansor/TenSet-style per-statement features.
 *
 * The original extracts 164 hand-engineered values per innermost non-loop
 * statement. This reproduction keeps the same structure (one feature row
 * per buffer statement, log-scaled resource counts) with a compact
 * 40-dimensional layout; the learned MLP consumes rows and sum-pools over
 * statements exactly like the TenSet MLP.
 *
 * The batched inference engine packs many candidates' rows into one matrix
 * (plus a SegmentTable mapping candidates to row ranges), writing into
 * caller-provided reusable buffers: once warm, extraction allocates
 * nothing. The single-candidate and batched paths share one row writer, so
 * their values are identical by construction.
 */

#include <span>

#include "core/symbols.hpp"
#include "device/device_spec.hpp"
#include "ir/task.hpp"
#include "nn/matrix.hpp"
#include "nn/workspace.hpp"
#include "sched/schedule.hpp"

namespace pruner {

/** Width of one statement feature row. */
constexpr size_t kStatementFeatureDim = 40;

/** Extract one feature row per buffer statement: [n_statements, 40]. */
Matrix extractStatementFeatures(const SubgraphTask& task, const Schedule& sch,
                                const DeviceSpec& device);

/** Write one candidate's statement rows (from its already-extracted
 *  symbols) into @p out at rows [row0, row0 + sym.statements.size()),
 *  which must exist and be zero-filled. */
void writeStatementFeatureRows(const SymbolSet& sym, const SubgraphTask& task,
                               const Schedule& sch, const DeviceSpec& device,
                               Matrix& out, size_t row0);

/** Pack every candidate's statement rows into @p out ([total_rows, 40],
 *  reshaped in place) and record per-candidate row ranges in @p segs. */
void extractStatementFeaturesBatch(const SubgraphTask& task,
                                   std::span<const Schedule> candidates,
                                   const DeviceSpec& device, Matrix& out,
                                   SegmentTable& segs);

} // namespace pruner
