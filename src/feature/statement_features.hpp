#pragma once

/**
 * @file statement_features.hpp
 * Ansor/TenSet-style per-statement features.
 *
 * The original extracts 164 hand-engineered values per innermost non-loop
 * statement. This reproduction keeps the same structure (one feature row
 * per buffer statement, log-scaled resource counts) with a compact
 * 40-dimensional layout; the learned MLP consumes rows and sum-pools over
 * statements exactly like the TenSet MLP.
 */

#include "device/device_spec.hpp"
#include "ir/task.hpp"
#include "nn/matrix.hpp"
#include "sched/schedule.hpp"

namespace pruner {

/** Width of one statement feature row. */
constexpr size_t kStatementFeatureDim = 40;

/** Extract one feature row per buffer statement: [n_statements, 40]. */
Matrix extractStatementFeatures(const SubgraphTask& task, const Schedule& sch,
                                const DeviceSpec& device);

} // namespace pruner
