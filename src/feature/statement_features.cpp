#include "feature/statement_features.hpp"

#include <cmath>

#include "core/penalty.hpp"
#include "support/logging.hpp"

namespace pruner {

namespace {

double
log1pSafe(double v)
{
    return std::log1p(std::max(v, 0.0));
}

} // namespace

void
writeStatementFeatureRows(const SymbolSet& sym, const SubgraphTask& task,
                          const Schedule& sch, const DeviceSpec& device,
                          Matrix& out, size_t row0)
{
    PRUNER_CHECK(out.cols() == kStatementFeatureDim);
    PRUNER_CHECK(row0 + sym.statements.size() <= out.rows());
    const PenaltySet pen = computePenalties(sym, device);

    // Whole-program context shared by every row.
    const double threads = sym.s4_threads;
    const double blocks = sym.s6_blocks;
    const double smem_ratio =
        sym.s3_l1_alloc /
        static_cast<double>(device.smem_per_block_floats);
    const double reg_ratio =
        sym.s1_l0_alloc / static_cast<double>(device.regs_per_thread);
    const double waste = sch.paddingWaste(task);

    for (size_t i = 0; i < sym.statements.size(); ++i) {
        const auto& stmt = sym.statements[i];
        double* f = out.row(row0 + i);
        size_t k = 0;
        // Statement kind one-hot.
        f[k + static_cast<size_t>(stmt.kind)] = 1.0;
        k += 3;
        // Statement-level quantities.
        f[k++] = log1pSafe(stmt.s5_traffic);
        f[k++] = log1pSafe(stmt.s7_trans_dim);
        f[k++] = log1pSafe(stmt.s8_flops);
        f[k++] = statementP2m(stmt, device);
        f[k++] = stmt.s5_traffic > 0.0
                     ? stmt.s8_flops / (stmt.s5_traffic + 1.0)
                     : 0.0; // statement arithmetic intensity
        // Program-level resource symbols (log-scaled).
        f[k++] = log1pSafe(sym.s1_l0_alloc);
        f[k++] = log1pSafe(sym.s2_l0_comp);
        f[k++] = log1pSafe(sym.s3_l1_alloc);
        f[k++] = log1pSafe(threads);
        f[k++] = log1pSafe(blocks);
        f[k++] = log1pSafe(static_cast<double>(sch.numVThreads()));
        f[k++] = log1pSafe(static_cast<double>(sch.regTilePoints()));
        f[k++] = log1pSafe(static_cast<double>(sch.reductionInner()));
        // Budget pressure.
        f[k++] = std::min(smem_ratio, 4.0);
        f[k++] = std::min(reg_ratio, 4.0);
        f[k++] = waste;
        // Penalty terms the analytic model uses (useful priors).
        f[k++] = pen.p_l1_c;
        f[k++] = pen.alpha_l1;
        f[k++] = pen.p_l2_c;
        f[k++] = pen.p_l0_m;
        f[k++] = pen.p_l1_m;
        // Annotations.
        for (int u : unrollChoices()) {
            f[k++] = sch.unroll() == u ? 1.0 : 0.0;
        }
        for (int v : vectorChoices()) {
            f[k++] = sch.vectorLen() == v ? 1.0 : 0.0;
        }
        f[k++] = sch.cacheShared() ? 1.0 : 0.0;
        // Task-level context.
        f[k++] = task.dtype == DType::Fp16Tc ? 1.0 : 0.0;
        f[k++] = sym.tc_alignment;
        f[k++] = static_cast<double>(task.conv_stride);
        f[k++] = log1pSafe(static_cast<double>(task.reductionSize()));
        f[k++] = log1pSafe(static_cast<double>(task.outputPoints()));
        PRUNER_CHECK(k <= kStatementFeatureDim);
    }
}

Matrix
extractStatementFeatures(const SubgraphTask& task, const Schedule& sch,
                         const DeviceSpec& device)
{
    const SymbolSet sym = extractSymbols(task, sch);
    Matrix feat(sym.statements.size(), kStatementFeatureDim);
    writeStatementFeatureRows(sym, task, sch, device, feat, 0);
    return feat;
}

void
extractStatementFeaturesBatch(const SubgraphTask& task,
                              std::span<const Schedule> candidates,
                              const DeviceSpec& device, Matrix& out,
                              SegmentTable& segs)
{
    static thread_local SymbolSet sym;
    out.resize(0, kStatementFeatureDim);
    segs.reset();
    for (const Schedule& sch : candidates) {
        extractSymbolsInto(task, sch, sym);
        const size_t row0 = out.rows();
        // Appended rows are value-initialized to zero (vector semantics),
        // which the one-hot writers rely on.
        out.resize(row0 + sym.statements.size(), kStatementFeatureDim);
        writeStatementFeatureRows(sym, task, sch, device, out, row0);
        segs.append(sym.statements.size());
    }
}

} // namespace pruner
