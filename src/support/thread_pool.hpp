#pragma once

/**
 * @file thread_pool.hpp
 * Fixed-size worker pool shared by the parallel batched measurement stage
 * and chunked cost-model scoring.
 *
 * Determinism contract: the pool never owns randomness. Callers derive an
 * independent Rng stream per work item (from a counter + content hash, see
 * Measurer::measureBatch), so results are bit-identical for any worker
 * count, including the inline serial path. The pool only changes wall-clock
 * time, never values.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace pruner {

/** Fixed-size thread pool with futures-based exception propagation. */
class ThreadPool
{
  public:
    /** Spawns @p workers threads (clamped to at least 1). */
    explicit ThreadPool(size_t workers);

    /** Joins all workers; queued jobs still run to completion first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    size_t size() const { return workers_.size(); }

    /**
     * Enqueue one callable; the returned future carries its result or the
     * exception it threw.
     */
    template <typename Fn>
    auto
    submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>>
    {
        using Result = std::invoke_result_t<Fn&>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Run body(i) for every i in [0, n), partitioned into contiguous
     * chunks across the workers, and wait for completion. If any
     * invocation throws, the exception thrown by the lowest-indexed chunk
     * is rethrown after all chunks have finished (no job is left running).
     */
    void parallelFor(size_t n, const std::function<void(size_t)>& body);

    // Execution-channel observability (how the run executed, not what it
    // computed): lifetime job counts and the deepest queue seen. Exported
    // as pool_* gauges; values depend on scheduling and worker count, so
    // they never enter the deterministic exposition.
    uint64_t jobsSubmitted() const
    {
        return jobs_submitted_.load(std::memory_order_relaxed);
    }
    uint64_t jobsCompleted() const
    {
        return jobs_completed_.load(std::memory_order_relaxed);
    }
    uint64_t peakQueueDepth() const
    {
        return peak_queue_.load(std::memory_order_relaxed);
    }

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::atomic<uint64_t> jobs_submitted_{0};
    std::atomic<uint64_t> jobs_completed_{0};
    std::atomic<uint64_t> peak_queue_{0};
};

} // namespace pruner
