#pragma once

/**
 * @file sim_clock.hpp
 * Simulated wall-clock used for search-time accounting.
 *
 * The paper reports tuning time broken into exploration / training /
 * measurement (Table 1) plus candidate compilation overhead (implied by the
 * end-to-end totals of Table 7). Our substrate executes in milliseconds of
 * real time, so each search action instead charges a calibrated simulated
 * cost to a SimClock; tuning curves and time tables are plotted against the
 * simulated clock. The constants below are calibrated so that Ansor with
 * 2,000 trials reproduces the paper's Table 1 split on Jetson Orin
 * (exploration ~35 min, training ~5.4 min, measurement ~44.4 min) and the
 * Table 7 end-to-end totals on Titan V.
 */

#include <array>
#include <cstddef>
#include <string>

namespace pruner {

/** Cost categories matching the paper's tuning-cost breakdown. */
enum class CostCategory : int {
    Exploration = 0, ///< feature extraction + cost-model / SA inference
    Training = 1,    ///< online cost-model training
    Measurement = 2, ///< on-device program measurement
    Compile = 3,     ///< candidate compilation before measurement
    Other = 4,
};

/** Number of cost categories. */
constexpr int kNumCostCategories = 5;

/** Human-readable name of a cost category. */
const char* costCategoryName(CostCategory c);

/**
 * Calibrated per-action simulated costs, in seconds.
 *
 * Derivation from the paper (Ansor, 2,000 trials = 200 rounds x 10):
 *  - measurement 44.4 min / 2000 trials  -> ~1.33 s per trial
 *  - exploration 35 min / 200 rounds with ~4096 learned-model candidate
 *    evaluations per round -> ~2.56 ms per candidate (features + inference)
 *  - training 5.4 min / 200 rounds -> ~1.62 s per round for the MLP
 *  - Table 7 totals imply ~1.2 s per-trial compilation overhead
 */
struct CostConstants
{
    double mlp_eval_per_candidate = 4.1e-3;
    double pacm_eval_per_candidate = 4.9e-3;
    double tlp_eval_per_candidate = 8.0e-3;
    double sa_eval_per_candidate = 5.0e-5;
    double mlp_train_per_round = 1.62;
    double pacm_train_per_round = 4.5;
    double tlp_train_per_round = 11.0;
    double measure_per_trial = 1.7;
    double compile_per_trial = 0.8;
    double task_switch_overhead = 0.05;

    /** Shared defaults used by every experiment (server-class hosts:
     *  calibrated to the Table 7 Titan V end-to-end totals). */
    static const CostConstants& defaults();

    /** Per-platform constants: Jetson Orin's measurement loop matches the
     *  paper's Table 1 split (44.4 min of measurement for 2,000 trials). */
    static CostConstants forDevice(const std::string& device_name);
};

/** Accumulating simulated clock with per-category totals. */
class SimClock
{
  public:
    SimClock() { reset(); }

    /** Charge @p seconds to category @p c. Requires seconds >= 0. */
    void charge(CostCategory c, double seconds);

    /** Total simulated time across all categories, in seconds. */
    double now() const;

    /** Simulated time charged to one category, in seconds. */
    double total(CostCategory c) const;

    /** Zero all counters. */
    void reset();

  private:
    std::array<double, kNumCostCategories> totals_;
};

} // namespace pruner
