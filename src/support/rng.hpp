#pragma once

/**
 * @file rng.hpp
 * Deterministic random number generation.
 *
 * All stochastic components of the library (schedule sampling, GA mutation,
 * simulator noise, NN initialization) draw from pruner::Rng so that every
 * experiment is reproducible from a single seed. The generator is
 * xoshiro256**, seeded through SplitMix64.
 */

#include <cstdint>
#include <vector>

#include "support/logging.hpp"

namespace pruner {

/** SplitMix64 step; also used as a cheap stateless hash. */
uint64_t splitmix64(uint64_t x);

/** Combine two hash values (boost-style). */
uint64_t hashCombine(uint64_t seed, uint64_t value);

/** Complete serializable Rng state (for checkpoint/resume). */
struct RngState
{
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
};

/** Deterministic xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Raw 64-bit draw (UniformRandomBitGenerator interface). */
    uint64_t operator()();

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ull; }

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform real in [0, 1). */
    double uniform();

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with given mean/stdev. */
    double normal(double mean, double stdev);

    /** True with probability p. */
    bool bernoulli(double p);

    /** Pick an index in [0, n) uniformly. Requires n > 0. */
    size_t index(size_t n);

    /**
     * Sample an index proportional to the given non-negative weights.
     * Falls back to uniform if all weights are zero.
     */
    size_t weightedIndex(const std::vector<double>& weights);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[index(i)]);
        }
    }

    /** Pick a uniformly random element (by reference). Requires non-empty. */
    template <typename T>
    const T&
    choice(const std::vector<T>& v)
    {
        PRUNER_CHECK(!v.empty());
        return v[index(v.size())];
    }

    /** Spawn an independent child generator (for parallel determinism). */
    Rng split();

    /** Snapshot the full generator state (bit-exact). */
    RngState state() const;

    /** Restore a state captured with state(); the stream continues
     *  exactly where the snapshot left off. */
    void setState(const RngState& state);

  private:
    uint64_t s_[4];
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace pruner
