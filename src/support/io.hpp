#pragma once

/**
 * @file io.hpp
 * Durable-write primitives with deterministic fault injection.
 *
 * Every artifact the library persists (record-log shards, measure-cache
 * snapshots, model checkpoints, session logs, tuning checkpoints) goes
 * through this layer, which provides:
 *
 *  - crc32(): the standard reflected CRC-32 (IEEE 802.3 polynomial),
 *    used to frame every persisted line and file so loaders can detect
 *    torn writes and bit flips instead of parsing garbage.
 *  - line CRC framing: appendLineCrc() suffixes a payload line with
 *    "\tcrc=XXXXXXXX"; checkLineCrc() verifies and strips the suffix.
 *    Lines without a suffix are accepted unchanged (back-compat with
 *    artifacts written before CRC framing existed).
 *  - atomicWriteFile(): tmp + rename whole-file replacement with bounded
 *    retry-with-backoff for transient failures. Returns success instead
 *    of throwing — callers degrade gracefully (warn + drop) when storage
 *    misbehaves.
 *  - quarantineFile(): rename a corrupt artifact to "<path>.corrupt" so
 *    the next load starts cold instead of tripping over the same poison.
 *  - IoFaultPlan: a process-global, deterministic failure plan (seeded,
 *    keyed on a monotonically increasing write-op counter) that injects
 *    short writes, ENOSPC, rename failures, and post-write crashes.
 *    Purely for tests and the crash_resume harness; the default plan
 *    injects nothing and adds one relaxed atomic load per write.
 *
 * The injection points mirror FaultPlan's philosophy from the measurement
 * layer: faults are a pure function of (plan seed, op index), so a failing
 * run replays exactly, and the plan is never consulted on the read path.
 */

#include <cstdint>
#include <string>

namespace pruner::io {

/** CRC-32 (reflected, poly 0xEDB88320) of a byte range. */
uint32_t crc32(const void* data, size_t size);

/** CRC-32 of a string's bytes. */
uint32_t crc32(const std::string& data);

/** Append "\tcrc=XXXXXXXX" (lowercase hex of crc32(line)) to @p line. */
std::string withLineCrc(const std::string& line);

/** Outcome of checkLineCrc(). */
enum class LineCrc
{
    Ok,       ///< valid suffix, verified and stripped
    Missing,  ///< no crc suffix (pre-CRC artifact) — payload unchanged
    Mismatch, ///< suffix present but CRC does not match — line is corrupt
};

/** Verify and strip a "\tcrc=XXXXXXXX" suffix from @p line in place. */
LineCrc checkLineCrc(std::string& line);

/** Kinds of injectable storage failures. */
enum class IoFaultKind : uint8_t
{
    None = 0,
    ShortWrite,      ///< write truncated partway (torn tail on disk)
    NoSpace,         ///< write fails entirely (ENOSPC-style), tmp removed
    RenameFail,      ///< data written but the atomic rename fails
    CrashAfterWrite, ///< process _exit()s right after the tmp write
    CrashAfterRename, ///< process _exit()s right after the rename
};

/** Deterministic storage-failure plan. Faults are a pure function of
 *  (seed, write-op index): op i fails with kind fault_kind iff
 *  hashCombine(seed, i) maps below fault_rate, or unconditionally when i
 *  is listed in fail_ops. A default-constructed plan injects nothing. */
struct IoFaultPlan
{
    uint64_t seed = 0;
    double fault_rate = 0.0;           ///< probability a write op faults
    IoFaultKind fault_kind = IoFaultKind::None;
    /** Explicit op indices to fault (checked before fault_rate). -1 ends
     *  the list; kept as a fixed array so the plan stays trivially
     *  copyable across fork(). */
    static constexpr size_t kMaxFailOps = 8;
    int64_t fail_ops[kMaxFailOps] = {-1, -1, -1, -1, -1, -1, -1, -1};
    /** Ops that fault transiently recover after this many retries
     *  (0 = the fault is permanent for that op). */
    uint32_t recover_after_attempts = 0;

    /** Exit code used by CrashAfterWrite/CrashAfterRename _exit(). */
    static constexpr int kCrashExitCode = 42;

    /** The fault (if any) for write op @p op, attempt @p attempt. */
    IoFaultKind faultFor(uint64_t op, uint32_t attempt) const;
};

/** Install a process-global fault plan (tests / crash harness only).
 *  Resets the write-op counter so plans are reproducible. */
void setIoFaultPlan(const IoFaultPlan& plan);

/** Remove any installed fault plan and reset the write-op counter. */
void clearIoFaultPlan();

/** Write-ops issued since the plan was (re)installed. */
uint64_t ioWriteOps();

/** Durably replace @p path with @p contents via tmp + rename.
 *
 *  Transient injected faults are retried up to @p max_attempts times with
 *  a tiny bounded backoff; on persistent failure the tmp file is removed
 *  and false is returned (never throws, never leaves a torn @p path —
 *  the old contents survive any failure short of a mid-rename crash,
 *  which POSIX rename makes atomic anyway). */
bool atomicWriteFile(const std::string& path, const std::string& contents,
                     int max_attempts = 3);

/** Append @p contents to @p path (creating it if absent).
 *
 *  Transient injected faults retry with the same bounded backoff. An
 *  injected ShortWrite emulates a crash mid-append: a prefix of the
 *  chunk lands on disk, no repair is attempted, and false is returned —
 *  exactly the torn-tail hazard the append-only loaders must survive.
 *  A real (non-injected) partial write is rolled back by truncating the
 *  file to its pre-append size before retrying. */
bool appendFile(const std::string& path, const std::string& contents,
                int max_attempts = 3);

/** Move a corrupt artifact aside to "<path>.corrupt" (overwriting any
 *  previous quarantine) so subsequent loads start cold. Returns the
 *  quarantine path, or "" if the rename failed (the caller should then
 *  ignore the file's contents anyway). */
std::string quarantineFile(const std::string& path);

} // namespace pruner::io
