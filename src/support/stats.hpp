#pragma once

/**
 * @file stats.hpp
 * Small statistics helpers used across the library and the benches.
 */

#include <cstddef>
#include <vector>

namespace pruner {

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double>& v);

/** Sample standard deviation (n-1 denominator); 0 for fewer than 2 items. */
double stdev(const std::vector<double>& v);

/** Geometric mean; requires strictly positive values. */
double geomean(const std::vector<double>& v);

/** Linear-interpolated percentile, p in [0, 100]. */
double percentile(std::vector<double> v, double p);

/** Pearson correlation coefficient; 0 if either side is constant. */
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/**
 * Spearman rank correlation; the standard sanity metric for cost models
 * (how well predicted scores order true latencies).
 */
double spearman(const std::vector<double>& a, const std::vector<double>& b);

/** Ranks with ties broken by average rank (1-based), used by spearman(). */
std::vector<double> rankWithTies(const std::vector<double>& v);

/** Exponential moving average accumulator. */
class Ema
{
  public:
    explicit Ema(double alpha) : alpha_(alpha) {}

    /** Feed one observation; returns the updated average. */
    double
    update(double x)
    {
        if (!initialized_) {
            value_ = x;
            initialized_ = true;
        } else {
            value_ = alpha_ * value_ + (1.0 - alpha_) * x;
        }
        return value_;
    }

    double value() const { return value_; }
    bool initialized() const { return initialized_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

/** Running min tracker with the step at which the min was found. */
class BestTracker
{
  public:
    /** Feed one observation at a given time; returns true if it improved. */
    bool
    update(double value, double time)
    {
        if (!initialized_ || value < best_) {
            best_ = value;
            best_time_ = time;
            initialized_ = true;
            return true;
        }
        return false;
    }

    bool initialized() const { return initialized_; }
    double best() const { return best_; }
    double bestTime() const { return best_time_; }

  private:
    bool initialized_ = false;
    double best_ = 0.0;
    double best_time_ = 0.0;
};

} // namespace pruner
