#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace pruner {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

uint64_t
hashCombine(uint64_t seed, uint64_t value)
{
    return seed ^ (splitmix64(value) + 0x9E3779B97F4A7C15ull + (seed << 6) +
                   (seed >> 2));
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    // Seed the four xoshiro words through SplitMix64 as recommended by the
    // xoshiro authors; a zero state is impossible this way.
    uint64_t sm = seed;
    for (auto& word : s_) {
        sm = splitmix64(sm);
        word = sm;
    }
}

uint64_t
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    PRUNER_CHECK(lo <= hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) { // full 64-bit range
        return static_cast<int64_t>((*this)());
    }
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = max() - max() % range;
    uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<int64_t>(draw % range);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) {
        u1 = uniform();
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stdev)
{
    return mean + stdev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::index(size_t n)
{
    PRUNER_CHECK(n > 0);
    return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
}

size_t
Rng::weightedIndex(const std::vector<double>& weights)
{
    PRUNER_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        PRUNER_CHECK_MSG(w >= 0.0, "negative weight " << w);
        total += w;
    }
    if (total <= 0.0) {
        return index(weights.size());
    }
    double draw = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw <= 0.0) {
            return i;
        }
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

RngState
Rng::state() const
{
    RngState out;
    for (size_t i = 0; i < 4; ++i) {
        out.s[i] = s_[i];
    }
    out.has_cached_normal = has_cached_normal_;
    out.cached_normal = cached_normal_;
    return out;
}

void
Rng::setState(const RngState& state)
{
    for (size_t i = 0; i < 4; ++i) {
        s_[i] = state.s[i];
    }
    has_cached_normal_ = state.has_cached_normal;
    cached_normal_ = state.cached_normal;
}

} // namespace pruner
