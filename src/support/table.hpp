#pragma once

/**
 * @file table.hpp
 * ASCII table and CSV emission used by the bench binaries to print rows in
 * the same shape as the paper's tables and figures.
 */

#include <string>
#include <vector>

namespace pruner {

/** Column-aligned ASCII table with an optional title and CSV export. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (may be ragged; short rows are padded). */
    void addRow(std::vector<std::string> row);

    /** Convenience: formats doubles with the given precision. */
    static std::string fmt(double value, int precision = 3);

    /** Formats a value as "N.NNx" speedup string. */
    static std::string fmtSpeedup(double value, int precision = 2);

    /** Render as an aligned ASCII table. */
    std::string str() const;

    /** Render as CSV (header first if present). */
    std::string csv() const;

    /** Print the ASCII rendering to stdout. */
    void print() const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pruner
