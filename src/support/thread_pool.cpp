#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "support/logging.hpp"

namespace pruner {

ThreadPool::ThreadPool(size_t workers)
{
    const size_t n = std::max<size_t>(workers, 1);
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this]() { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PRUNER_CHECK(!stopping_);
        queue_.push(std::move(job));
        jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
        const auto depth = static_cast<uint64_t>(queue_.size());
        if (depth > peak_queue_.load(std::memory_order_relaxed)) {
            peak_queue_.store(depth, std::memory_order_relaxed);
        }
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return; // stopping and drained
            }
            job = std::move(queue_.front());
            queue_.pop();
        }
        job(); // packaged_task captures any exception into its future
        jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)>& body)
{
    if (n == 0) {
        return;
    }
    const size_t n_chunks = std::min(n, size());
    if (n_chunks <= 1) {
        for (size_t i = 0; i < n; ++i) {
            body(i);
        }
        return;
    }
    std::vector<std::future<void>> chunks;
    chunks.reserve(n_chunks);
    const size_t per_chunk = (n + n_chunks - 1) / n_chunks;
    for (size_t c = 0; c < n_chunks; ++c) {
        const size_t begin = c * per_chunk;
        const size_t end = std::min(begin + per_chunk, n);
        if (begin >= end) {
            break;
        }
        chunks.push_back(submit([&body, begin, end]() {
            for (size_t i = begin; i < end; ++i) {
                body(i);
            }
        }));
    }
    // Drain every chunk before rethrowing so no worker still touches
    // caller state when the exception escapes.
    std::exception_ptr first_error;
    for (auto& chunk : chunks) {
        try {
            chunk.get();
        } catch (...) {
            if (first_error == nullptr) {
                first_error = std::current_exception();
            }
        }
    }
    if (first_error != nullptr) {
        std::rethrow_exception(first_error);
    }
}

} // namespace pruner
