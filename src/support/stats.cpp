#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hpp"

namespace pruner {

double
mean(const std::vector<double>& v)
{
    if (v.empty()) {
        return 0.0;
    }
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

double
stdev(const std::vector<double>& v)
{
    if (v.size() < 2) {
        return 0.0;
    }
    const double m = mean(v);
    double ss = 0.0;
    for (double x : v) {
        ss += (x - m) * (x - m);
    }
    return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

double
geomean(const std::vector<double>& v)
{
    PRUNER_CHECK(!v.empty());
    double log_sum = 0.0;
    for (double x : v) {
        PRUNER_CHECK_MSG(x > 0.0, "geomean requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(v.size()));
}

double
percentile(std::vector<double> v, double p)
{
    PRUNER_CHECK(!v.empty());
    PRUNER_CHECK(p >= 0.0 && p <= 100.0);
    std::sort(v.begin(), v.end());
    const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = static_cast<size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    if (lo == hi) {
        // Exact index: return it directly rather than interpolating —
        // v[hi] * 0.0 would turn an infinite sample into NaN.
        return v[lo];
    }
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double
pearson(const std::vector<double>& a, const std::vector<double>& b)
{
    PRUNER_CHECK(a.size() == b.size());
    if (a.size() < 2) {
        return 0.0;
    }
    const double ma = mean(a);
    const double mb = mean(b);
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0) {
        return 0.0;
    }
    return cov / std::sqrt(va * vb);
}

std::vector<double>
rankWithTies(const std::vector<double>& v)
{
    const size_t n = v.size();
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> ranks(n, 0.0);
    size_t i = 0;
    while (i < n) {
        size_t j = i;
        while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) {
            ++j;
        }
        // average 1-based rank over the tie group [i, j]
        const double avg_rank = (static_cast<double>(i) +
                                 static_cast<double>(j)) / 2.0 + 1.0;
        for (size_t k = i; k <= j; ++k) {
            ranks[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    return ranks;
}

double
spearman(const std::vector<double>& a, const std::vector<double>& b)
{
    return pearson(rankWithTies(a), rankWithTies(b));
}

} // namespace pruner
