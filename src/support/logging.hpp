#pragma once

/**
 * @file logging.hpp
 * Logging and invariant-checking macros for the pruner library.
 *
 * Follows the gem5 fatal()/panic() split:
 *  - PRUNER_FATAL: the situation is the caller's fault (bad configuration,
 *    invalid argument); throws pruner::FatalError so callers/tests can catch.
 *  - PRUNER_CHECK / PRUNER_ICHECK: internal invariant; a failure is a bug in
 *    this library and also throws (with file/line), never silently continues.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace pruner {

/** Error thrown for user-caused failures (invalid config or arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Error thrown for violated internal invariants (library bugs). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string& msg) : std::logic_error(msg) {}
};

/** Global log verbosity. 0 = silent, 1 = info, 2 = debug. The initial
 *  level comes from the PRUNER_LOG_LEVEL environment variable (read once,
 *  at the first query): a number, or one of silent/info/debug. Unset or
 *  unparsable means 0. setLogLevel() overrides it at any time. */
int logLevel();

/** Set global log verbosity (returns the previous level). */
int setLogLevel(int level);

/** Parse a PRUNER_LOG_LEVEL value ("2", "info", "debug", ...). Returns
 *  @p fallback when @p text is null or unrecognised. Exposed for tests. */
int parseLogLevel(const char* text, int fallback = 0);

namespace detail {

/** Stream-collecting helper that throws on destruction of the message. */
[[noreturn]] void throwFatal(const char* file, int line,
                             const std::string& msg);
[[noreturn]] void throwInternal(const char* file, int line,
                                const std::string& msg);
void logMessage(int level, const std::string& msg);

} // namespace detail

} // namespace pruner

#define PRUNER_FATAL(msg_expr)                                               \
    do {                                                                     \
        std::ostringstream pruner_oss_;                                      \
        pruner_oss_ << msg_expr;                                             \
        ::pruner::detail::throwFatal(__FILE__, __LINE__,                     \
                                     pruner_oss_.str());                     \
    } while (0)

#define PRUNER_CHECK(cond)                                                   \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::pruner::detail::throwInternal(__FILE__, __LINE__,              \
                                            "Check failed: " #cond);         \
        }                                                                    \
    } while (0)

#define PRUNER_CHECK_MSG(cond, msg_expr)                                     \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream pruner_oss_;                                  \
            pruner_oss_ << "Check failed: " #cond << " — " << msg_expr;      \
            ::pruner::detail::throwInternal(__FILE__, __LINE__,              \
                                            pruner_oss_.str());              \
        }                                                                    \
    } while (0)

#define PRUNER_LOG(level, msg_expr)                                          \
    do {                                                                     \
        if (::pruner::logLevel() >= (level)) {                               \
            std::ostringstream pruner_oss_;                                  \
            pruner_oss_ << msg_expr;                                         \
            ::pruner::detail::logMessage((level), pruner_oss_.str());        \
        }                                                                    \
    } while (0)

#define PRUNER_INFO(msg_expr) PRUNER_LOG(1, msg_expr)
#define PRUNER_DEBUG(msg_expr) PRUNER_LOG(2, msg_expr)

/** Recoverable trouble (torn tail truncated, shard quarantined, write
 *  dropped): the library degrades gracefully instead of throwing, but the
 *  operator should know. Level-1 so default (silent) runs stay quiet. */
#define PRUNER_WARN(msg_expr) PRUNER_LOG(1, "warning: " << msg_expr)
