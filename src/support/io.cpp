#include "support/io.hpp"

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "support/rng.hpp"

namespace pruner::io {

namespace fs = std::filesystem;

namespace {

/** Reflected CRC-32 lookup table (IEEE 802.3 polynomial). */
const uint32_t*
crcTable()
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

constexpr char kCrcPrefix[] = "\tcrc=";
constexpr size_t kCrcPrefixLen = 5;  // "\tcrc="
constexpr size_t kCrcSuffixLen = 13; // "\tcrc=" + 8 hex digits

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    return -1;
}

/** The installed plan. Written only by setIoFaultPlan/clearIoFaultPlan
 *  (before any concurrent writers start); g_fault_active publishes it. */
IoFaultPlan g_fault_plan;                      // NOLINT
std::atomic<bool> g_fault_active{false};       // NOLINT
std::atomic<uint64_t> g_write_ops{0};          // NOLINT

IoFaultKind
currentFault(uint64_t op, uint32_t attempt)
{
    if (!g_fault_active.load(std::memory_order_acquire)) {
        return IoFaultKind::None;
    }
    return g_fault_plan.faultFor(op, attempt);
}

/** Tiny deterministic-length backoff between retries of one write op. */
void
backoff(int attempt)
{
    if (attempt > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(attempt));
    }
}

void
removeQuiet(const std::string& path)
{
    std::error_code ec;
    fs::remove(path, ec);
}

[[noreturn]] void
crashNow()
{
    // Raw _exit: no destructors, no stream flushes — the closest safe
    // approximation of a kill -9 the process can inflict on itself.
    ::_exit(IoFaultPlan::kCrashExitCode);
}

} // namespace

uint32_t
crc32(const void* data, size_t size)
{
    const uint32_t* table = crcTable();
    const auto* bytes = static_cast<const unsigned char*>(data);
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i) {
        crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const std::string& data)
{
    return crc32(data.data(), data.size());
}

std::string
withLineCrc(const std::string& line)
{
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "\tcrc=%08x", crc32(line));
    return line + suffix;
}

LineCrc
checkLineCrc(std::string& line)
{
    if (line.size() < kCrcSuffixLen ||
        line.compare(line.size() - kCrcSuffixLen, kCrcPrefixLen, kCrcPrefix,
                     kCrcPrefixLen) != 0) {
        return LineCrc::Missing;
    }
    uint32_t stored = 0;
    for (size_t i = line.size() - 8; i < line.size(); ++i) {
        const int digit = hexDigit(line[i]);
        if (digit < 0) {
            return LineCrc::Missing; // not a crc suffix after all
        }
        stored = (stored << 4) | static_cast<uint32_t>(digit);
    }
    const size_t payload_len = line.size() - kCrcSuffixLen;
    if (crc32(line.data(), payload_len) != stored) {
        return LineCrc::Mismatch;
    }
    line.resize(payload_len);
    return LineCrc::Ok;
}

IoFaultKind
IoFaultPlan::faultFor(uint64_t op, uint32_t attempt) const
{
    if (fault_kind == IoFaultKind::None) {
        return IoFaultKind::None;
    }
    bool hit = false;
    for (const int64_t listed : fail_ops) {
        if (listed >= 0 && static_cast<uint64_t>(listed) == op) {
            hit = true;
            break;
        }
    }
    if (!hit && fault_rate > 0.0) {
        const uint64_t bits = splitmix64(hashCombine(seed, op));
        const double u =
            static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
        hit = u < fault_rate;
    }
    if (!hit) {
        return IoFaultKind::None;
    }
    if (recover_after_attempts > 0 && attempt >= recover_after_attempts) {
        return IoFaultKind::None;
    }
    return fault_kind;
}

void
setIoFaultPlan(const IoFaultPlan& plan)
{
    g_fault_plan = plan;
    g_write_ops.store(0, std::memory_order_relaxed);
    g_fault_active.store(true, std::memory_order_release);
}

void
clearIoFaultPlan()
{
    g_fault_active.store(false, std::memory_order_release);
    g_write_ops.store(0, std::memory_order_relaxed);
}

uint64_t
ioWriteOps()
{
    return g_write_ops.load(std::memory_order_relaxed);
}

bool
atomicWriteFile(const std::string& path, const std::string& contents,
                int max_attempts)
{
    const std::string tmp = path + ".tmp";
    const uint64_t op = g_write_ops.fetch_add(1, std::memory_order_relaxed);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        backoff(attempt);
        const IoFaultKind fault =
            currentFault(op, static_cast<uint32_t>(attempt));
        if (fault == IoFaultKind::NoSpace) {
            removeQuiet(tmp);
            continue;
        }
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            continue;
        }
        if (fault == IoFaultKind::ShortWrite) {
            // The write(2) came back short: a torn tmp is on disk. The
            // target is untouched; discard the tmp and retry.
            out.write(contents.data(),
                      static_cast<std::streamsize>(contents.size() / 2));
            out.close();
            continue;
        }
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        const bool wrote = out.good();
        out.close();
        if (!wrote) {
            removeQuiet(tmp);
            continue;
        }
        if (fault == IoFaultKind::CrashAfterWrite) {
            crashNow();
        }
        if (fault == IoFaultKind::RenameFail) {
            removeQuiet(tmp);
            continue;
        }
        std::error_code ec;
        fs::rename(tmp, path, ec);
        if (ec) {
            removeQuiet(tmp);
            continue;
        }
        if (fault == IoFaultKind::CrashAfterRename) {
            crashNow();
        }
        return true;
    }
    removeQuiet(tmp);
    return false;
}

bool
appendFile(const std::string& path, const std::string& contents,
           int max_attempts)
{
    const uint64_t op = g_write_ops.fetch_add(1, std::memory_order_relaxed);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        backoff(attempt);
        const IoFaultKind fault =
            currentFault(op, static_cast<uint32_t>(attempt));
        if (fault == IoFaultKind::NoSpace) {
            continue;
        }
        std::error_code ec;
        const uintmax_t before =
            fs::exists(path, ec) ? fs::file_size(path, ec) : 0;
        std::ofstream out(path, std::ios::binary | std::ios::app);
        if (!out) {
            continue;
        }
        if (fault == IoFaultKind::ShortWrite) {
            // Crash mid-append: a prefix of the chunk lands on disk and
            // nobody is left to repair it. The torn tail stays — that is
            // the exact hazard the append-only loaders truncate away.
            out.write(contents.data(),
                      static_cast<std::streamsize>(contents.size() / 2));
            out.close();
            return false;
        }
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        const bool wrote = out.good();
        out.close();
        if (fault == IoFaultKind::CrashAfterWrite) {
            crashNow();
        }
        if (wrote) {
            return true;
        }
        // Real partial write: roll back to the pre-append size so a
        // retry cannot duplicate the chunk.
        fs::resize_file(path, before, ec);
    }
    return false;
}

std::string
quarantineFile(const std::string& path)
{
    const std::string target = path + ".corrupt";
    std::error_code ec;
    fs::remove(target, ec);
    ec.clear();
    fs::rename(path, target, ec);
    if (ec) {
        return "";
    }
    return target;
}

} // namespace pruner::io
