#include "support/sim_clock.hpp"

#include "support/logging.hpp"

namespace pruner {

const char*
costCategoryName(CostCategory c)
{
    switch (c) {
      case CostCategory::Exploration:
        return "exploration";
      case CostCategory::Training:
        return "training";
      case CostCategory::Measurement:
        return "measurement";
      case CostCategory::Compile:
        return "compile";
      case CostCategory::Other:
        return "other";
    }
    return "unknown";
}

const CostConstants&
CostConstants::defaults()
{
    static const CostConstants instance;
    return instance;
}

CostConstants
CostConstants::forDevice(const std::string& device_name)
{
    CostConstants c;
    if (device_name == "Orin-AGX") {
        // Table 1 is calibrated on Orin: 44.4 min / 2,000 trials of
        // measurement (compilation happens off-device there).
        c.measure_per_trial = 1.33;
        c.compile_per_trial = 0.0;
    }
    return c;
}

void
SimClock::charge(CostCategory c, double seconds)
{
    PRUNER_CHECK_MSG(seconds >= 0.0, "negative time charge " << seconds);
    totals_[static_cast<int>(c)] += seconds;
}

double
SimClock::now() const
{
    double sum = 0.0;
    for (double t : totals_) {
        sum += t;
    }
    return sum;
}

double
SimClock::total(CostCategory c) const
{
    return totals_[static_cast<int>(c)];
}

void
SimClock::reset()
{
    totals_.fill(0.0);
}

} // namespace pruner
