#include "support/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace pruner {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
    return oss.str();
}

std::string
Table::fmtSpeedup(double value, int precision)
{
    return fmt(value, precision) + "x";
}

std::string
Table::str() const
{
    // Compute column widths over header and all rows.
    size_t ncols = header_.size();
    for (const auto& row : rows_) {
        ncols = std::max(ncols, row.size());
    }
    std::vector<size_t> widths(ncols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    widen(header_);
    for (const auto& row : rows_) {
        widen(row);
    }

    std::ostringstream oss;
    if (!title_.empty()) {
        oss << "== " << title_ << " ==\n";
    }
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            oss << cell << std::string(widths[i] - cell.size() + 2, ' ');
        }
        oss << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths) {
            total += w + 2;
        }
        oss << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_) {
        emit(row);
    }
    return oss.str();
}

std::string
Table::csv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i) {
                oss << ",";
            }
            oss << row[i];
        }
        oss << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
    }
    for (const auto& row : rows_) {
        emit(row);
    }
    return oss.str();
}

void
Table::print() const
{
    std::cout << str() << std::flush;
}

} // namespace pruner
