#include "support/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace pruner {

namespace {

int
envLogLevel()
{
    return parseLogLevel(std::getenv("PRUNER_LOG_LEVEL"));
}

std::atomic<int>&
logLevelCell()
{
    // Function-local so the environment is read exactly once, lazily — a
    // test can setLogLevel() before or after and still win.
    static std::atomic<int> level{envLogLevel()};
    return level;
}

} // namespace

int
parseLogLevel(const char* text, int fallback)
{
    if (text == nullptr || *text == '\0') {
        return fallback;
    }
    if (std::isdigit(static_cast<unsigned char>(text[0])) != 0 ||
        (text[0] == '-' &&
         std::isdigit(static_cast<unsigned char>(text[1])) != 0)) {
        return std::atoi(text);
    }
    if (std::strcmp(text, "silent") == 0 || std::strcmp(text, "off") == 0) {
        return 0;
    }
    if (std::strcmp(text, "info") == 0) {
        return 1;
    }
    if (std::strcmp(text, "debug") == 0) {
        return 2;
    }
    return fallback;
}

int
logLevel()
{
    return logLevelCell().load(std::memory_order_relaxed);
}

int
setLogLevel(int level)
{
    return logLevelCell().exchange(level, std::memory_order_relaxed);
}

namespace detail {

void
throwFatal(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": fatal: " << msg;
    throw FatalError(oss.str());
}

void
throwInternal(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": internal: " << msg;
    throw InternalError(oss.str());
}

void
logMessage(int level, const std::string& msg)
{
    const char* tag = level >= 2 ? "[debug] " : "[info] ";
    std::cerr << tag << msg << "\n";
}

} // namespace detail
} // namespace pruner
