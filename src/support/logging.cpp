#include "support/logging.hpp"

#include <atomic>
#include <iostream>

namespace pruner {

namespace {
std::atomic<int> g_log_level{0};
} // namespace

int
logLevel()
{
    return g_log_level.load(std::memory_order_relaxed);
}

int
setLogLevel(int level)
{
    return g_log_level.exchange(level, std::memory_order_relaxed);
}

namespace detail {

void
throwFatal(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": fatal: " << msg;
    throw FatalError(oss.str());
}

void
throwInternal(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": internal: " << msg;
    throw InternalError(oss.str());
}

void
logMessage(int level, const std::string& msg)
{
    const char* tag = level >= 2 ? "[debug] " : "[info] ";
    std::cerr << tag << msg << "\n";
}

} // namespace detail
} // namespace pruner
