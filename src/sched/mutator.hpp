#pragma once

/**
 * @file mutator.hpp
 * Genetic-algorithm operators over schedules.
 *
 * The paper's LSE (Algorithm 2, line 22: SchMutation) explores
 * "tiling-factor transformations for for-loops": factors migrate between
 * tile levels, tuples get resampled, and annotations flip. The same
 * operators back the evolutionary search of the Ansor baseline, so draft
 * and verify stages explore the identical space.
 */

#include "sched/sampler.hpp"

namespace pruner {

/** Mutation/crossover operators for the GA. */
class ScheduleMutator
{
  public:
    ScheduleMutator(const SubgraphTask& task, const DeviceSpec& device);

    /** Return a mutated copy of @p sch (always valid). */
    Schedule mutate(const Schedule& sch, Rng& rng) const;

    /** Uniform per-axis crossover of two parents (always valid). */
    Schedule crossover(const Schedule& a, const Schedule& b, Rng& rng) const;

  private:
    /** Move a factor of two between two positions of one split. */
    void migrateFactor(Schedule& sch, Rng& rng) const;
    /** Resample one spatial or reduction tuple from scratch. */
    void resampleAxis(Schedule& sch, Rng& rng) const;
    /** Flip unroll / vectorization annotation. */
    void mutateAnnotation(Schedule& sch, Rng& rng) const;

    const SubgraphTask* task_;
    const DeviceSpec* device_;
    ScheduleSampler sampler_;
};

} // namespace pruner
