#include "sched/mutator.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace pruner {

ScheduleMutator::ScheduleMutator(const SubgraphTask& task,
                                 const DeviceSpec& device)
    : task_(&task), device_(&device), sampler_(task, device)
{
}

void
ScheduleMutator::migrateFactor(Schedule& sch, Rng& rng) const
{
    if (!sch.spatialMut().empty() && rng.bernoulli(0.7)) {
        auto& s = sch.spatialMut()[rng.index(sch.spatialMut().size())];
        // Move a factor of 2 between two tile positions (1..4); outer is
        // re-derived by repair.
        const int from = static_cast<int>(rng.uniformInt(1, 4));
        const int to = static_cast<int>(rng.uniformInt(1, 4));
        if (from != to && s.f[from] % 2 == 0) {
            s.f[from] /= 2;
            s.f[to] *= 2;
        }
    } else if (!sch.reductionMut().empty()) {
        auto& r = sch.reductionMut()[rng.index(sch.reductionMut().size())];
        const int from = static_cast<int>(rng.uniformInt(1, 2));
        const int to = from == 1 ? 2 : 1;
        if (r.f[from] % 2 == 0) {
            r.f[from] /= 2;
            r.f[to] *= 2;
        } else {
            r.f[to] *= 2;
        }
    }
}

void
ScheduleMutator::resampleAxis(Schedule& sch, Rng& rng) const
{
    const Schedule fresh = sampler_.sample(rng);
    const size_t n_sp = sch.spatialMut().size();
    const size_t n_rd = sch.reductionMut().size();
    const size_t total = n_sp + n_rd;
    if (total == 0) {
        return;
    }
    const size_t pick = rng.index(total);
    if (pick < n_sp) {
        sch.spatialMut()[pick] = fresh.spatial()[pick];
    } else {
        sch.reductionMut()[pick - n_sp] = fresh.reduction()[pick - n_sp];
    }
}

void
ScheduleMutator::mutateAnnotation(Schedule& sch, Rng& rng) const
{
    if (rng.bernoulli(0.5)) {
        sch.setUnroll(unrollChoices()[rng.index(unrollChoices().size())]);
    } else {
        sch.setVectorLen(
            vectorChoices()[rng.index(vectorChoices().size())]);
    }
}

Schedule
ScheduleMutator::mutate(const Schedule& sch, Rng& rng) const
{
    Schedule out = sch;
    const double roll = rng.uniform();
    if (roll < 0.45) {
        migrateFactor(out, rng);
    } else if (roll < 0.8) {
        resampleAxis(out, rng);
    } else {
        mutateAnnotation(out, rng);
    }
    if (!sampler_.repair(out)) {
        // Extremely rare; fall back to a fresh sample to stay valid.
        out = sampler_.sample(rng);
    }
    return out;
}

Schedule
ScheduleMutator::crossover(const Schedule& a, const Schedule& b,
                           Rng& rng) const
{
    PRUNER_CHECK(a.spatial().size() == b.spatial().size());
    PRUNER_CHECK(a.reduction().size() == b.reduction().size());
    Schedule out = a;
    for (size_t i = 0; i < out.spatialMut().size(); ++i) {
        if (rng.bernoulli(0.5)) {
            out.spatialMut()[i] = b.spatial()[i];
        }
    }
    for (size_t i = 0; i < out.reductionMut().size(); ++i) {
        if (rng.bernoulli(0.5)) {
            out.reductionMut()[i] = b.reduction()[i];
        }
    }
    if (rng.bernoulli(0.5)) {
        out.setUnroll(b.unroll());
    }
    if (rng.bernoulli(0.5)) {
        out.setVectorLen(b.vectorLen());
    }
    if (!sampler_.repair(out)) {
        out = a;
    }
    return out;
}

} // namespace pruner
