#pragma once

/**
 * @file tiling.hpp
 * Multi-level tiling primitives for the GPU schedule template.
 *
 * Following the paper's Figure 3, every spatial axis is split five ways
 *   [I0 block, I1 thread, I2 vthread, I3, I4]   (I3/I4: register tiles)
 * and every reduction axis three ways
 *   [K0 outer (shared-memory stage loop), K1, K2 inner].
 * The outermost factor always absorbs the remainder, so the padded extent
 * (product of all factors) is >= the loop extent; the overshoot is wasted
 * work, tracked explicitly.
 */

#include <array>
#include <cstdint>
#include <vector>

namespace pruner {

class Rng;

/** Positions within a 5-way spatial split. */
enum SpatialPos : int {
    kBlock = 0,
    kThread = 1,
    kVThread = 2,
    kInnerA = 3,
    kInnerB = 4,
};

/** A 5-way split of one spatial axis. */
struct SpatialSplit
{
    std::array<int64_t, 5> f{1, 1, 1, 1, 1};

    int64_t
    product() const
    {
        return f[0] * f[1] * f[2] * f[3] * f[4];
    }

    /** Product of the register-tile factors (vthread * inner tiles). */
    int64_t
    regTile() const
    {
        return f[kVThread] * f[kInnerA] * f[kInnerB];
    }

    bool operator==(const SpatialSplit&) const = default;
};

/** A 3-way split of one reduction axis: [K0, K1, K2]. */
struct ReductionSplit
{
    std::array<int64_t, 3> f{1, 1, 1};

    int64_t
    product() const
    {
        return f[0] * f[1] * f[2];
    }

    /** Factors kept inside the shared-memory stage (K1 * K2). */
    int64_t
    innerProduct() const
    {
        return f[1] * f[2];
    }

    bool operator==(const ReductionSplit&) const = default;
};

/** ceil(a / b) for positive integers. */
int64_t ceilDiv(int64_t a, int64_t b);

/** Round @p n up to the next multiple of @p align (align >= 1). */
int64_t roundUp(int64_t n, int64_t align);

/** All divisors of n (unsorted ascending). Intended for small-ish n. */
std::vector<int64_t> divisorsOf(int64_t n);

/** Powers of two <= limit (at least {1}). */
std::vector<int64_t> powersOfTwoUpTo(int64_t limit);

/**
 * Sample a plausible tile factor <= limit: mostly powers of two, sometimes
 * a divisor of @p extent, so irregular extents can be tiled exactly.
 */
int64_t sampleTileFactor(Rng& rng, int64_t extent, int64_t limit);

} // namespace pruner
