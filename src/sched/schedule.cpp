#include "sched/schedule.hpp"

#include <sstream>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace pruner {

Schedule::Schedule(std::vector<SpatialSplit> spatial,
                   std::vector<ReductionSplit> reduction, int unroll,
                   int vector_len, bool cache_shared)
    : spatial_(std::move(spatial)),
      reduction_(std::move(reduction)),
      unroll_(unroll),
      vector_len_(vector_len),
      cache_shared_(cache_shared)
{
}

int64_t
Schedule::numBlocks() const
{
    int64_t n = 1;
    for (const auto& s : spatial_) {
        n *= s.f[kBlock];
    }
    return n;
}

int64_t
Schedule::threadsPerBlock() const
{
    int64_t n = 1;
    for (const auto& s : spatial_) {
        n *= s.f[kThread];
    }
    return n;
}

int64_t
Schedule::numVThreads() const
{
    int64_t n = 1;
    for (const auto& s : spatial_) {
        n *= s.f[kVThread];
    }
    return n;
}

int64_t
Schedule::regTilePoints() const
{
    int64_t n = 1;
    for (const auto& s : spatial_) {
        n *= s.regTile();
    }
    return n;
}

int64_t
Schedule::reductionInner() const
{
    int64_t n = 1;
    for (const auto& r : reduction_) {
        n *= r.innerProduct();
    }
    return n;
}

double
Schedule::paddingWaste(const SubgraphTask& task) const
{
    PRUNER_CHECK(spatial_.size() == task.spatial.size());
    PRUNER_CHECK(reduction_.size() == task.reduction.size());
    double waste = 1.0;
    for (size_t i = 0; i < spatial_.size(); ++i) {
        waste *= static_cast<double>(spatial_[i].product()) /
                 static_cast<double>(task.spatial[i].extent);
    }
    for (size_t i = 0; i < reduction_.size(); ++i) {
        waste *= static_cast<double>(reduction_[i].product()) /
                 static_cast<double>(task.reduction[i].extent);
    }
    return waste;
}

void
Schedule::repairOuter(const SubgraphTask& task)
{
    PRUNER_CHECK(spatial_.size() == task.spatial.size());
    PRUNER_CHECK(reduction_.size() == task.reduction.size());
    for (size_t i = 0; i < spatial_.size(); ++i) {
        auto& s = spatial_[i];
        int64_t inner = s.f[1] * s.f[2] * s.f[3] * s.f[4];
        PRUNER_CHECK(inner >= 1);
        s.f[kBlock] = ceilDiv(task.spatial[i].extent, inner);
    }
    for (size_t i = 0; i < reduction_.size(); ++i) {
        auto& r = reduction_[i];
        int64_t inner = r.f[1] * r.f[2];
        PRUNER_CHECK(inner >= 1);
        r.f[0] = ceilDiv(task.reduction[i].extent, inner);
    }
}

bool
Schedule::valid(const SubgraphTask& task, int max_threads) const
{
    if (spatial_.size() != task.spatial.size() ||
        reduction_.size() != task.reduction.size()) {
        return false;
    }
    for (const auto& s : spatial_) {
        for (int64_t f : s.f) {
            if (f < 1) {
                return false;
            }
        }
    }
    for (const auto& r : reduction_) {
        for (int64_t f : r.f) {
            if (f < 1) {
                return false;
            }
        }
    }
    const int64_t threads = threadsPerBlock();
    if (threads < 1 || threads > max_threads) {
        return false;
    }
    // Keep vthread counts within TVM's practical limit.
    if (numVThreads() > 64) {
        return false;
    }
    // Padded extents must cover the axes.
    for (size_t i = 0; i < spatial_.size(); ++i) {
        if (spatial_[i].product() < task.spatial[i].extent) {
            return false;
        }
    }
    for (size_t i = 0; i < reduction_.size(); ++i) {
        if (reduction_[i].product() < task.reduction[i].extent) {
            return false;
        }
    }
    return true;
}

std::vector<SchedulePrimitive>
Schedule::primitiveSequence(const SubgraphTask& task) const
{
    std::vector<SchedulePrimitive> seq;
    primitiveSequenceInto(task, seq);
    return seq;
}

void
Schedule::primitiveSequenceInto(const SubgraphTask& task,
                                std::vector<SchedulePrimitive>& seq) const
{
    seq.clear();
    for (size_t i = 0; i < spatial_.size(); ++i) {
        for (int pos = 1; pos < 5; ++pos) {
            seq.push_back({SchedulePrimitive::Split, static_cast<int>(i),
                           spatial_[i].f[pos]});
        }
        seq.push_back({SchedulePrimitive::Bind, static_cast<int>(i),
                       spatial_[i].f[kThread]});
    }
    for (size_t i = 0; i < reduction_.size(); ++i) {
        for (int pos = 1; pos < 3; ++pos) {
            seq.push_back({SchedulePrimitive::Split,
                           static_cast<int>(spatial_.size() + i),
                           reduction_[i].f[pos]});
        }
    }
    seq.push_back({SchedulePrimitive::Reorder, 0,
                   static_cast<int64_t>(task.spatial.size())});
    if (cache_shared_) {
        for (size_t t = 0; t + 1 < task.tensors.size(); ++t) {
            seq.push_back(
                {SchedulePrimitive::CacheRead, static_cast<int>(t), 1});
        }
    }
    seq.push_back({SchedulePrimitive::Annotate, 0, unroll_});
    seq.push_back({SchedulePrimitive::Annotate, 1, vector_len_});
}

uint64_t
Schedule::hash() const
{
    uint64_t h = splitmix64(0x5C4Dull);
    for (const auto& s : spatial_) {
        for (int64_t f : s.f) {
            h = hashCombine(h, static_cast<uint64_t>(f));
        }
    }
    for (const auto& r : reduction_) {
        for (int64_t f : r.f) {
            h = hashCombine(h, static_cast<uint64_t>(f) | (1ull << 42));
        }
    }
    h = hashCombine(h, static_cast<uint64_t>(unroll_));
    h = hashCombine(h, static_cast<uint64_t>(vector_len_));
    h = hashCombine(h, cache_shared_ ? 1 : 0);
    return h;
}

std::string
Schedule::toString() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < spatial_.size(); ++i) {
        oss << (i ? " " : "") << "s" << i << ":[";
        for (int p = 0; p < 5; ++p) {
            oss << (p ? "," : "") << spatial_[i].f[p];
        }
        oss << "]";
    }
    for (size_t i = 0; i < reduction_.size(); ++i) {
        oss << " r" << i << ":[";
        for (int p = 0; p < 3; ++p) {
            oss << (p ? "," : "") << reduction_[i].f[p];
        }
        oss << "]";
    }
    oss << " u" << unroll_ << " v" << vector_len_
        << (cache_shared_ ? " smem" : "");
    return oss.str();
}

std::string
Schedule::serialize() const
{
    std::ostringstream oss;
    oss << spatial_.size() << ";" << reduction_.size() << ";";
    for (const auto& s : spatial_) {
        for (int64_t f : s.f) {
            oss << f << ",";
        }
    }
    oss << ";";
    for (const auto& r : reduction_) {
        for (int64_t f : r.f) {
            oss << f << ",";
        }
    }
    oss << ";" << unroll_ << ";" << vector_len_ << ";"
        << (cache_shared_ ? 1 : 0);
    return oss.str();
}

Schedule
Schedule::deserialize(const std::string& text)
{
    std::istringstream iss(text);
    std::string field;
    auto next = [&]() {
        if (!std::getline(iss, field, ';')) {
            PRUNER_FATAL("malformed schedule record: " << text);
        }
        return field;
    };
    const size_t n_spatial = std::stoul(next());
    const size_t n_reduction = std::stoul(next());
    Schedule sch;
    {
        std::istringstream nums(next());
        std::string tok;
        for (size_t i = 0; i < n_spatial; ++i) {
            SpatialSplit s;
            for (int p = 0; p < 5; ++p) {
                if (!std::getline(nums, tok, ',')) {
                    PRUNER_FATAL("malformed spatial factors: " << text);
                }
                s.f[p] = std::stoll(tok);
            }
            sch.spatial_.push_back(s);
        }
    }
    {
        std::istringstream nums(next());
        std::string tok;
        for (size_t i = 0; i < n_reduction; ++i) {
            ReductionSplit r;
            for (int p = 0; p < 3; ++p) {
                if (!std::getline(nums, tok, ',')) {
                    PRUNER_FATAL("malformed reduction factors: " << text);
                }
                r.f[p] = std::stoll(tok);
            }
            sch.reduction_.push_back(r);
        }
    }
    sch.unroll_ = std::stoi(next());
    sch.vector_len_ = std::stoi(next());
    sch.cache_shared_ = std::stoi(next()) != 0;
    return sch;
}

} // namespace pruner
