#include "sched/sampler.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/logging.hpp"

namespace pruner {

ScheduleSampler::ScheduleSampler(const SubgraphTask& task,
                                 const DeviceSpec& device)
    : task_(&task), device_(&device)
{
}

Schedule
ScheduleSampler::sample(Rng& rng) const
{
    const auto& task = *task_;
    const auto& dev = *device_;
    std::vector<SpatialSplit> spatial(task.spatial.size());
    std::vector<ReductionSplit> reduction(task.reduction.size());

    // Per-axis thread budget: distribute max_threads_per_block across axes.
    const int64_t per_axis_thread_cap = std::max<int64_t>(
        dev.warp_size,
        static_cast<int64_t>(dev.max_threads_per_block) /
            std::max<size_t>(task.spatial.size(), 1));

    for (size_t i = 0; i < task.spatial.size(); ++i) {
        const int64_t extent = task.spatial[i].extent;
        auto& s = spatial[i];
        s.f[kThread] = sampleTileFactor(rng, extent, per_axis_thread_cap);
        s.f[kVThread] = sampleTileFactor(rng, extent, 4);
        s.f[kInnerA] = sampleTileFactor(rng, extent, 8);
        s.f[kInnerB] = sampleTileFactor(rng, extent, 4);
    }
    for (size_t i = 0; i < task.reduction.size(); ++i) {
        const int64_t extent = task.reduction[i].extent;
        auto& r = reduction[i];
        r.f[1] = sampleTileFactor(rng, extent, 32);
        r.f[2] = sampleTileFactor(rng, extent, 8);
    }

    Schedule sch(std::move(spatial), std::move(reduction),
                 unrollChoices()[rng.index(unrollChoices().size())],
                 vectorChoices()[rng.index(vectorChoices().size())],
                 /*cache_shared=*/!task.reduction.empty());
    const bool ok = repair(sch);
    PRUNER_CHECK_MSG(ok, "sampler produced an unrepairable schedule for "
                             << task.key);
    return sch;
}

std::vector<Schedule>
ScheduleSampler::sampleMany(Rng& rng, size_t n) const
{
    std::vector<Schedule> out;
    out.reserve(n);
    std::unordered_set<uint64_t> seen;
    size_t attempts = 0;
    const size_t max_attempts = n * 20 + 64;
    while (out.size() < n && attempts < max_attempts) {
        ++attempts;
        Schedule sch = sample(rng);
        if (seen.insert(sch.hash()).second) {
            out.push_back(std::move(sch));
        }
    }
    // Tiny spaces may not have n distinct schedules; fill with duplicates
    // so callers always get the population size they asked for.
    while (out.size() < n && !out.empty()) {
        out.push_back(out[rng.index(out.size())]);
    }
    return out;
}

bool
ScheduleSampler::repair(Schedule& sch) const
{
    const auto& task = *task_;
    const auto& dev = *device_;
    if (sch.spatialMut().size() != task.spatial.size() ||
        sch.reductionMut().size() != task.reduction.size()) {
        return false;
    }
    for (auto& s : sch.spatialMut()) {
        for (auto& f : s.f) {
            f = std::max<int64_t>(f, 1);
        }
    }
    for (auto& r : sch.reductionMut()) {
        for (auto& f : r.f) {
            f = std::max<int64_t>(f, 1);
        }
    }
    // Clamp total threads per block into [1, max_threads_per_block] by
    // halving the largest thread factor until we fit.
    auto too_many_threads = [&]() {
        return sch.threadsPerBlock() > dev.max_threads_per_block;
    };
    int guard = 0;
    while (too_many_threads() && guard++ < 64) {
        auto& splits = sch.spatialMut();
        size_t argmax = 0;
        for (size_t i = 1; i < splits.size(); ++i) {
            if (splits[i].f[kThread] > splits[argmax].f[kThread]) {
                argmax = i;
            }
        }
        splits[argmax].f[kThread] = std::max<int64_t>(
            splits[argmax].f[kThread] / 2, 1);
    }
    // Clamp vthreads to the practical limit.
    guard = 0;
    while (sch.numVThreads() > 64 && guard++ < 64) {
        auto& splits = sch.spatialMut();
        size_t argmax = 0;
        for (size_t i = 1; i < splits.size(); ++i) {
            if (splits[i].f[kVThread] > splits[argmax].f[kVThread]) {
                argmax = i;
            }
        }
        splits[argmax].f[kVThread] = std::max<int64_t>(
            splits[argmax].f[kVThread] / 2, 1);
    }
    // Keep register tiles within what Ansor's rules would emit.
    guard = 0;
    while (sch.regTilePoints() > 256 && guard++ < 64) {
        auto& splits = sch.spatialMut();
        size_t best_axis = 0;
        int best_pos = kInnerA;
        int64_t best_val = 0;
        for (size_t i = 0; i < splits.size(); ++i) {
            for (int p : {kVThread, kInnerA, kInnerB}) {
                if (splits[i].f[p] > best_val) {
                    best_val = splits[i].f[p];
                    best_axis = i;
                    best_pos = p;
                }
            }
        }
        if (best_val <= 1) {
            break;
        }
        splits[best_axis].f[best_pos] = std::max<int64_t>(best_val / 2, 1);
    }
    // Keep the shared-memory staging within the per-block budget, the way
    // Ansor rejects sketches that cannot launch.
    if (sch.cacheShared() && !task.reduction.empty()) {
        auto smem_floats = [&]() {
            double total = 0.0;
            for (const auto& tensor : task.tensors) {
                if (tensor.is_output) {
                    continue;
                }
                double tile = 1.0;
                for (int a : tensor.spatial_axes) {
                    const auto& s = sch.spatial()[a];
                    tile *= static_cast<double>(s.f[1] * s.f[2] * s.f[3] *
                                                s.f[4]);
                }
                for (int r : tensor.reduction_axes) {
                    tile *= static_cast<double>(
                        sch.reduction()[r].innerProduct());
                }
                total += tile;
            }
            return total;
        };
        const double budget =
            static_cast<double>(dev.smem_per_block_floats);
        guard = 0;
        while (smem_floats() > budget && guard++ < 64) {
            // Prefer shrinking the reduction inner factors first (cheaper
            // for reuse), then the largest spatial tile factor.
            int64_t* victim = nullptr;
            int64_t best = 1;
            for (auto& r : sch.reductionMut()) {
                for (int p : {1, 2}) {
                    if (r.f[p] > best) {
                        best = r.f[p];
                        victim = &r.f[p];
                    }
                }
            }
            if (victim == nullptr || best <= 2) {
                for (auto& s : sch.spatialMut()) {
                    for (int p = 1; p < 5; ++p) {
                        if (s.f[p] > best) {
                            best = s.f[p];
                            victim = &s.f[p];
                        }
                    }
                }
            }
            if (victim == nullptr || best <= 1) {
                break;
            }
            *victim = std::max<int64_t>(best / 2, 1);
        }
    }
    // Shrink inner tiles that overshoot the axis extent on their own.
    for (size_t i = 0; i < task.spatial.size(); ++i) {
        auto& s = sch.spatialMut()[i];
        const int64_t extent = task.spatial[i].extent;
        guard = 0;
        while (s.f[1] * s.f[2] * s.f[3] * s.f[4] > roundUp(extent, 2) * 2 &&
               guard++ < 64) {
            // Halve the biggest inner factor; keeps padding waste bounded.
            int argmax = 1;
            for (int p = 2; p < 5; ++p) {
                if (s.f[p] > s.f[argmax]) {
                    argmax = p;
                }
            }
            if (s.f[argmax] <= 1) {
                break;
            }
            s.f[argmax] = std::max<int64_t>(s.f[argmax] / 2, 1);
        }
    }
    sch.repairOuter(task);
    return sch.valid(task, dev.max_threads_per_block);
}

} // namespace pruner
