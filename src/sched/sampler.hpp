#pragma once

/**
 * @file sampler.hpp
 * Random schedule generation (Ansor's RandomInitSch / sketch sampling).
 *
 * The sampler draws structurally valid schedules for a task on a device:
 * per-axis tile factors, thread counts within launch limits, and loop
 * annotations. It corresponds to line 15 of the paper's Algorithm 2 and to
 * the random portion of S_draft in Algorithm 1 (line 10).
 */

#include <vector>

#include "device/device_spec.hpp"
#include "ir/task.hpp"
#include "sched/schedule.hpp"
#include "support/rng.hpp"

namespace pruner {

/** Stateless-config random schedule generator. */
class ScheduleSampler
{
  public:
    ScheduleSampler(const SubgraphTask& task, const DeviceSpec& device);

    /** Draw one valid random schedule. */
    Schedule sample(Rng& rng) const;

    /** Draw @p n schedules, deduplicated by hash (best effort: gives up
     *  after a bounded number of redraws to stay fast on tiny spaces). */
    std::vector<Schedule> sampleMany(Rng& rng, size_t n) const;

    /** Clamp/repair an arbitrary schedule into validity (thread limits,
     *  outer-factor coverage). Returns false if it cannot be repaired. */
    bool repair(Schedule& sch) const;

    const SubgraphTask& task() const { return *task_; }
    const DeviceSpec& device() const { return *device_; }

  private:
    const SubgraphTask* task_;
    const DeviceSpec* device_;
};

} // namespace pruner
