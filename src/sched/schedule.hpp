#pragma once

/**
 * @file schedule.hpp
 * A concrete schedule instance for a SubgraphTask.
 *
 * A Schedule assigns the multi-level tiling factors of every axis plus the
 * loop annotations Ansor's GPU sketch exposes (auto-unroll limit,
 * vectorization width, cooperative shared-memory staging). It is the unit
 * the whole system revolves around: the sampler generates them, the GA
 * mutates them, the symbol analyzer / cost models score them, and the
 * simulator "measures" them.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/task.hpp"
#include "sched/tiling.hpp"

namespace pruner {

/** Auto-unroll settings used by Ansor's GPU rules. */
inline const std::vector<int>& unrollChoices()
{
    static const std::vector<int> kChoices{0, 16, 64, 512};
    return kChoices;
}

/** Vectorization widths considered for global-memory access. */
inline const std::vector<int>& vectorChoices()
{
    static const std::vector<int> kChoices{1, 2, 4};
    return kChoices;
}

/** One step of the high-level schedule-primitive sequence (TLP's view). */
struct SchedulePrimitive
{
    enum Kind : int {
        Split = 0,
        Reorder = 1,
        CacheRead = 2,
        Annotate = 3,
        Bind = 4,
    };
    Kind kind = Split;
    int axis = 0;     ///< axis ordinal the primitive applies to
    int64_t arg = 0;  ///< factor / annotation value
};

/** A concrete schedule for one SubgraphTask. */
class Schedule
{
  public:
    Schedule() = default;

    /** Construct with the given split counts (axes must match the task). */
    Schedule(std::vector<SpatialSplit> spatial,
             std::vector<ReductionSplit> reduction, int unroll = 64,
             int vector_len = 1, bool cache_shared = true);

    const std::vector<SpatialSplit>& spatial() const { return spatial_; }
    const std::vector<ReductionSplit>& reduction() const
    {
        return reduction_;
    }
    std::vector<SpatialSplit>& spatialMut() { return spatial_; }
    std::vector<ReductionSplit>& reductionMut() { return reduction_; }

    int unroll() const { return unroll_; }
    int vectorLen() const { return vector_len_; }
    bool cacheShared() const { return cache_shared_; }
    void setUnroll(int u) { unroll_ = u; }
    void setVectorLen(int v) { vector_len_ = v; }
    void setCacheShared(bool c) { cache_shared_ = c; }

    /** Grid size: product of block factors across spatial axes. */
    int64_t numBlocks() const;

    /** Threads per block: product of thread factors. */
    int64_t threadsPerBlock() const;

    /** Virtual threads per block: product of vthread factors. */
    int64_t numVThreads() const;

    /** Output points computed per thread (register tile). */
    int64_t regTilePoints() const;

    /** Reduction length covered by one shared-memory stage (prod K1*K2). */
    int64_t reductionInner() const;

    /** Total padded iteration count divided by the true iteration count of
     *  @p task; 1.0 means no wasted work. */
    double paddingWaste(const SubgraphTask& task) const;

    /**
     * Re-derive the outer factors so the padded extent covers each axis of
     * @p task with minimal overshoot. Call after mutating inner factors.
     */
    void repairOuter(const SubgraphTask& task);

    /** True if the schedule is structurally valid for @p task on a device
     *  with @p max_threads per block (axis counts match, factors positive,
     *  thread count within limits). */
    bool valid(const SubgraphTask& task, int max_threads) const;

    /** The high-level primitive sequence (for TLP-style features). */
    std::vector<SchedulePrimitive>
    primitiveSequence(const SubgraphTask& task) const;

    /** primitiveSequence() into a caller-owned vector (cleared, capacity
     *  reused — the batched feature extractor's zero-allocation path). */
    void primitiveSequenceInto(const SubgraphTask& task,
                               std::vector<SchedulePrimitive>& out) const;

    /** Stable content hash. */
    uint64_t hash() const;

    /** Compact human-readable form, e.g. "i:[2,8,2,4,1] k:[8,4,1] u64 v4". */
    std::string toString() const;

    /** Serialize to a compact text record (one line, no spaces). */
    std::string serialize() const;

    /** Parse a record produced by serialize(). Throws FatalError on
     *  malformed input. */
    static Schedule deserialize(const std::string& text);

    bool operator==(const Schedule&) const = default;

  private:
    std::vector<SpatialSplit> spatial_;
    std::vector<ReductionSplit> reduction_;
    int unroll_ = 64;
    int vector_len_ = 1;
    bool cache_shared_ = true;
};

} // namespace pruner
