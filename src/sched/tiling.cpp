#include "sched/tiling.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace pruner {

int64_t
ceilDiv(int64_t a, int64_t b)
{
    PRUNER_CHECK(a >= 0 && b > 0);
    return (a + b - 1) / b;
}

int64_t
roundUp(int64_t n, int64_t align)
{
    PRUNER_CHECK(align >= 1);
    return ceilDiv(n, align) * align;
}

std::vector<int64_t>
divisorsOf(int64_t n)
{
    PRUNER_CHECK(n >= 1);
    std::vector<int64_t> lo, hi;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            lo.push_back(d);
            if (d != n / d) {
                hi.push_back(n / d);
            }
        }
    }
    lo.insert(lo.end(), hi.rbegin(), hi.rend());
    return lo;
}

std::vector<int64_t>
powersOfTwoUpTo(int64_t limit)
{
    std::vector<int64_t> out{1};
    while (out.back() * 2 <= limit) {
        out.push_back(out.back() * 2);
    }
    return out;
}

int64_t
sampleTileFactor(Rng& rng, int64_t extent, int64_t limit)
{
    PRUNER_CHECK(limit >= 1);
    const int64_t cap = std::min(limit, std::max<int64_t>(extent, 1));
    if (cap == 1) {
        return 1;
    }
    if (rng.bernoulli(0.8)) {
        const auto pows = powersOfTwoUpTo(cap);
        return pows[rng.index(pows.size())];
    }
    // Occasionally use an exact divisor so odd extents tile without padding.
    auto divs = divisorsOf(extent);
    divs.erase(std::remove_if(divs.begin(), divs.end(),
                              [cap](int64_t d) { return d > cap; }),
               divs.end());
    if (divs.empty()) {
        return 1;
    }
    return divs[rng.index(divs.size())];
}

} // namespace pruner
