#include "db/artifact_db.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "search/record_log.hpp"
#include "nn/serialize.hpp"
#include "support/logging.hpp"

namespace pruner {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kCacheMagic = 0x434D5250; // "PRMC" little-endian
constexpr uint32_t kCacheVersion = 1;
constexpr size_t kCacheHeaderBytes = 16;
constexpr size_t kCacheEntryBytes = 24;

void
putU32(std::string& out, uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

void
putU64(std::string& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

uint32_t
getU32(const char* p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | static_cast<uint8_t>(p[i]);
    }
    return v;
}

uint64_t
getU64(const char* p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | static_cast<uint8_t>(p[i]);
    }
    return v;
}

/** (task hash, schedule hash) -> latency, the snapshot's logical content. */
using SnapshotMap =
    std::unordered_map<uint64_t, std::unordered_map<uint64_t, double>>;

/** Parse a snapshot file into @p out; tolerates missing files, foreign
 *  magic/version, and truncated tails. Returns entries read. */
size_t
readSnapshotFile(const std::string& path, SnapshotMap* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return 0;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (bytes.size() < kCacheHeaderBytes ||
        getU32(bytes.data()) != kCacheMagic ||
        getU32(bytes.data() + 4) != kCacheVersion) {
        return 0;
    }
    const uint64_t claimed = getU64(bytes.data() + 8);
    const size_t available =
        (bytes.size() - kCacheHeaderBytes) / kCacheEntryBytes;
    const size_t count =
        std::min<size_t>(static_cast<size_t>(claimed), available);
    size_t read = 0;
    for (size_t i = 0; i < count; ++i) {
        const char* p = bytes.data() + kCacheHeaderBytes +
                        i * kCacheEntryBytes;
        const uint64_t task = getU64(p);
        const uint64_t sched = getU64(p + 8);
        const double latency = std::bit_cast<double>(getU64(p + 16));
        (*out)[task][sched] = latency;
        ++read;
    }
    return read;
}

/** Canonical snapshot order: flatten @p map sorted by (task hash,
 *  schedule hash). Both serialization and restore use this, so identical
 *  logical content always yields identical bytes and a deterministic
 *  restored cache state. */
std::vector<MeasureCacheEntry>
flattenSorted(const SnapshotMap& map)
{
    std::vector<MeasureCacheEntry> entries;
    for (const auto& [task, scheds] : map) {
        for (const auto& [sched, latency] : scheds) {
            entries.push_back({task, sched, latency});
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const MeasureCacheEntry& a, const MeasureCacheEntry& b) {
                  return a.task_hash != b.task_hash
                             ? a.task_hash < b.task_hash
                             : a.sched_hash < b.sched_hash;
              });
    return entries;
}

/** Serialize @p map in canonical order. */
std::string
encodeSnapshot(const SnapshotMap& map)
{
    const std::vector<MeasureCacheEntry> entries = flattenSorted(map);
    std::string bytes;
    bytes.reserve(kCacheHeaderBytes + entries.size() * kCacheEntryBytes);
    putU32(bytes, kCacheMagic);
    putU32(bytes, kCacheVersion);
    putU64(bytes, entries.size());
    for (const auto& e : entries) {
        putU64(bytes, e.task_hash);
        putU64(bytes, e.sched_hash);
        putU64(bytes, std::bit_cast<uint64_t>(e.latency));
    }
    return bytes;
}

/** Write @p bytes to @p path through a temp file + rename, so readers never
 *  observe a half-written snapshot. */
void
writeFileAtomic(const std::string& path, const std::string& bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            PRUNER_FATAL("cannot open " << tmp << " for writing");
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            PRUNER_FATAL("write failure on " << tmp);
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        PRUNER_FATAL("cannot rename " << tmp << " to " << path << ": "
                                      << ec.message());
    }
}

/** File-name-safe form of a model key ("Pruner/PaCM/a100" ->
 *  "Pruner_PaCM_a100"). */
std::string
sanitizeKey(const std::string& key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '-';
        out.push_back(safe ? c : '_');
    }
    return out.empty() ? std::string("default") : out;
}

} // namespace

ArtifactDb::ArtifactDb(std::string root, size_t num_shards)
    : root_(std::move(root))
{
    PRUNER_CHECK_MSG(!root_.empty(), "ArtifactDb root must be non-empty");
    num_shards = std::max<size_t>(num_shards, 1);
    for (const char* sub : {"records", "models"}) {
        std::error_code ec;
        fs::create_directories(fs::path(root_) / sub, ec);
        if (ec) {
            PRUNER_FATAL("cannot create ArtifactDb directory "
                         << (fs::path(root_) / sub).string() << ": "
                         << ec.message());
        }
    }
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
        auto shard = std::make_unique<Shard>();
        std::ostringstream oss;
        oss << "shard_" << std::setw(4) << std::setfill('0') << i << ".log";
        shard->path = (fs::path(root_) / "records" / oss.str()).string();
        shards_.push_back(std::move(shard));
    }
    // Load every shard log present, dispatching each line to its in-memory
    // shard by task hash — which *file* a record sits in is a layout
    // detail, so stores written with a different shard count (or whose
    // shard files were concatenated) still load fully.
    std::vector<std::string> existing;
    std::error_code iter_ec;
    for (const auto& entry :
         fs::directory_iterator(fs::path(root_) / "records", iter_ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard_", 0) == 0 &&
            entry.path().extension() == ".log") {
            existing.push_back(entry.path().string());
        }
    }
    if (iter_ec) {
        PRUNER_FATAL("cannot scan ArtifactDb records under " << root_
                                                             << ": "
                                                             << iter_ec.message());
    }
    std::sort(existing.begin(), existing.end());
    for (const auto& path : existing) {
        loadShardFile(path);
    }
}

ArtifactDb::Shard&
ArtifactDb::shardFor(uint64_t task_hash) const
{
    return *shards_[task_hash % shards_.size()];
}

void
ArtifactDb::loadShardFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        return; // fresh shard, no log yet
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        RawRecordLine raw;
        if (!lineToRawRecord(line, &raw)) {
            continue; // malformed / truncated tail: crash-tolerant skip
        }
        Shard& shard = shardFor(raw.task_hash);
        ++shard.lines;
        auto& per_task = shard.by_task[raw.task_hash];
        const uint64_t sched_hash = raw.sch.hash();
        auto it = per_task.find(sched_hash);
        if (it == per_task.end() || raw.latency < it->second.latency) {
            per_task[sched_hash] = {std::move(raw.sch), raw.latency};
        }
    }
}

size_t
ArtifactDb::appendRecords(const std::vector<MeasuredRecord>& records)
{
    // Group by shard first so each shard is locked (and its log opened)
    // at most once per batch.
    std::vector<std::vector<const MeasuredRecord*>> per_shard(
        shards_.size());
    for (const auto& record : records) {
        if (!std::isfinite(record.latency) || record.latency <= 0.0) {
            continue;
        }
        per_shard[record.task.hash() % shards_.size()].push_back(&record);
    }
    size_t written = 0;
    for (size_t s = 0; s < per_shard.size(); ++s) {
        if (per_shard[s].empty()) {
            continue;
        }
        Shard& shard = *shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        std::ofstream out;
        for (const MeasuredRecord* record : per_shard[s]) {
            auto& per_task = shard.by_task[record->task.hash()];
            const uint64_t sched_hash = record->sch.hash();
            const auto it = per_task.find(sched_hash);
            if (it != per_task.end() &&
                it->second.latency <= record->latency) {
                continue; // already stored at least as good: no log growth
            }
            if (!out.is_open()) {
                out.open(shard.path, std::ios::app);
                if (!out) {
                    PRUNER_FATAL("cannot open record shard " << shard.path
                                                             << " for append");
                }
            }
            // Flush before indexing: the in-memory dedup map must only
            // claim records that actually reached the log (a later
            // improvement would otherwise be deduped against a line that
            // was never written).
            out << recordToLine(*record) << "\n";
            out.flush();
            if (!out) {
                PRUNER_FATAL("write failure on record shard "
                             << shard.path);
            }
            per_task[sched_hash] = {record->sch, record->latency};
            ++shard.lines;
            ++written;
        }
    }
    return written;
}

size_t
ArtifactDb::recordCount() const
{
    size_t total = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->lines;
    }
    return total;
}

std::vector<ServedSchedule>
ArtifactDb::topK(const SubgraphTask& task, size_t k) const
{
    Shard& shard = shardFor(task.hash());
    std::vector<ServedSchedule> out;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.by_task.find(task.hash());
        if (it == shard.by_task.end()) {
            return out;
        }
        out.reserve(it->second.size());
        for (const auto& [sched_hash, stored] : it->second) {
            out.push_back({stored.sch, stored.latency, sched_hash});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ServedSchedule& a, const ServedSchedule& b) {
                  return a.latency != b.latency
                             ? a.latency < b.latency
                             : a.sched_hash < b.sched_hash;
              });
    if (out.size() > k) {
        out.resize(k);
    }
    return out;
}

std::optional<ServedSchedule>
ArtifactDb::bestSchedule(const SubgraphTask& task) const
{
    auto top = topK(task, 1);
    if (top.empty()) {
        return std::nullopt;
    }
    return std::move(top.front());
}

void
ArtifactDb::saveMeasureCache(const MeasureCache& cache)
{
    const std::string path =
        (fs::path(root_) / "measure_cache.bin").string();
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    // Merge with whatever is already persisted so concurrent sessions
    // accumulate instead of clobbering each other; the live cache wins on
    // conflicting pairs (its value is fresher).
    SnapshotMap merged;
    readSnapshotFile(path, &merged);
    for (const auto& e : cache.exportEntries()) {
        merged[e.task_hash][e.sched_hash] = e.latency;
    }
    writeFileAtomic(path, encodeSnapshot(merged));
}

size_t
ArtifactDb::loadMeasureCache(MeasureCache* cache) const
{
    PRUNER_CHECK(cache != nullptr);
    if (cache->capacity() == 0) {
        return 0; // caching disabled: don't pay the snapshot read
    }
    const std::string path =
        (fs::path(root_) / "measure_cache.bin").string();
    SnapshotMap map;
    {
        std::lock_guard<std::mutex> lock(snapshot_mutex_);
        readSnapshotFile(path, &map);
    }
    // Insert in canonical sorted order so the restored LRU state is
    // deterministic. A snapshot larger than the cache keeps its canonical
    // tail (the earlier inserts get evicted) — report only what the cache
    // can actually hold.
    const std::vector<MeasureCacheEntry> entries = flattenSorted(map);
    if (entries.size() > cache->capacity()) {
        PRUNER_INFO("measure-cache snapshot ("
                    << entries.size() << " entries) exceeds cache capacity ("
                    << cache->capacity()
                    << "); oldest canonical entries will be evicted");
    }
    for (const auto& e : entries) {
        cache->insert(e.task_hash, e.sched_hash, e.latency);
    }
    return std::min(entries.size(), cache->capacity());
}

std::string
ArtifactDb::modelPath(const std::string& key) const
{
    return (fs::path(root_) / "models" / (sanitizeKey(key) + ".params"))
        .string();
}

void
ArtifactDb::saveModelParams(const std::string& key,
                            const std::vector<double>& params)
{
    // saveParams writes text; route it through the same tmp+rename dance
    // by writing to a sibling and renaming.
    const std::string path = modelPath(key);
    const std::string tmp = path + ".tmp";
    saveParams(tmp, params);
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        PRUNER_FATAL("cannot rename " << tmp << " to " << path << ": "
                                      << ec.message());
    }
}

std::optional<std::vector<double>>
ArtifactDb::tryLoadModelParams(const std::string& key) const
{
    // std::exception, not just FatalError: a corrupt header can make
    // loadParams throw length_error/bad_alloc from the size allocation.
    try {
        return loadParams(modelPath(key));
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

WarmStartStats
ArtifactDb::warmStart(const std::vector<SubgraphTask>& known_tasks,
                      TuningRecordDb* records, MeasureCache* cache,
                      CostModel* model, const std::string& model_key) const
{
    WarmStartStats stats;
    if (records != nullptr) {
        for (const auto& task : known_tasks) {
            // Worst-first replay: the incumbent ends up most recent, so
            // recentWindow-based online training sees the best history.
            auto stored = topK(task, static_cast<size_t>(-1));
            for (auto it = stored.rbegin(); it != stored.rend(); ++it) {
                records->add({task, it->sch, it->latency});
                ++stats.records_replayed;
            }
        }
    }
    if (cache != nullptr) {
        stats.cache_entries = loadMeasureCache(cache);
    }
    if (model != nullptr) {
        if (auto params = tryLoadModelParams(model_key)) {
            const bool all_finite =
                std::all_of(params->begin(), params->end(),
                            [](double v) { return std::isfinite(v); });
            if (all_finite &&
                params->size() == model->getParams().size()) {
                model->setParams(*params);
                stats.model_restored = true;
            }
        }
    }
    return stats;
}

} // namespace pruner
