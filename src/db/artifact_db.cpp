#include "db/artifact_db.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <limits>
#include <sstream>

#include "search/record_log.hpp"
#include "nn/serialize.hpp"
#include "support/io.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace pruner {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kCacheMagic = 0x434D5250; // "PRMC" little-endian
/** v1: 16-byte header (magic, version, count), no checksum — truncated
 *  tails load their intact prefix. v2 appends a CRC-32 of the entry bytes
 *  to the header; any size or CRC mismatch marks the file corrupt. v1
 *  files are still accepted on load. */
constexpr uint32_t kCacheVersionLegacy = 1;
constexpr uint32_t kCacheVersion = 2;
constexpr size_t kCacheHeaderBytesV1 = 16;
constexpr size_t kCacheHeaderBytes = 20;
constexpr size_t kCacheEntryBytes = 24;

void
putU32(std::string& out, uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

void
putU64(std::string& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

uint32_t
getU32(const char* p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | static_cast<uint8_t>(p[i]);
    }
    return v;
}

uint64_t
getU64(const char* p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | static_cast<uint8_t>(p[i]);
    }
    return v;
}

/** (task hash, schedule hash) -> latency, the snapshot's logical content. */
using SnapshotMap =
    std::unordered_map<uint64_t, std::unordered_map<uint64_t, double>>;

/** Outcome of readSnapshotFile(). */
enum class SnapshotRead : uint8_t
{
    Missing, ///< no file (or unreadable): nothing loaded
    Ok,      ///< entries loaded (possibly zero)
    Corrupt, ///< foreign magic, bad size, or CRC mismatch — caller
             ///< should quarantine; nothing loaded
};

/** Parse a snapshot file into @p out. Accepts both the CRC-framed v2
 *  format and legacy v1 (where a truncated tail loads its intact
 *  prefix). */
SnapshotRead
readSnapshotFile(const std::string& path, SnapshotMap* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return SnapshotRead::Missing;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (bytes.size() < kCacheHeaderBytesV1 ||
        getU32(bytes.data()) != kCacheMagic) {
        return SnapshotRead::Corrupt;
    }
    const uint32_t version = getU32(bytes.data() + 4);
    const uint64_t claimed = getU64(bytes.data() + 8);
    size_t header = kCacheHeaderBytes;
    size_t count = 0;
    if (version == kCacheVersionLegacy) {
        header = kCacheHeaderBytesV1;
        const size_t available = (bytes.size() - header) / kCacheEntryBytes;
        count = std::min<size_t>(static_cast<size_t>(claimed), available);
    } else if (version == kCacheVersion) {
        if (bytes.size() < kCacheHeaderBytes ||
            bytes.size() - kCacheHeaderBytes !=
                claimed * kCacheEntryBytes) {
            return SnapshotRead::Corrupt;
        }
        const uint32_t stored_crc = getU32(bytes.data() + 16);
        const uint32_t actual_crc =
            io::crc32(bytes.data() + kCacheHeaderBytes,
                      bytes.size() - kCacheHeaderBytes);
        if (stored_crc != actual_crc) {
            return SnapshotRead::Corrupt;
        }
        count = static_cast<size_t>(claimed);
    } else {
        return SnapshotRead::Corrupt;
    }
    for (size_t i = 0; i < count; ++i) {
        const char* p = bytes.data() + header + i * kCacheEntryBytes;
        const uint64_t task = getU64(p);
        const uint64_t sched = getU64(p + 8);
        const double latency = std::bit_cast<double>(getU64(p + 16));
        (*out)[task][sched] = latency;
    }
    return SnapshotRead::Ok;
}

/** Canonical snapshot order: flatten @p map sorted by (task hash,
 *  schedule hash). Both serialization and restore use this, so identical
 *  logical content always yields identical bytes and a deterministic
 *  restored cache state. */
std::vector<MeasureCacheEntry>
flattenSorted(const SnapshotMap& map)
{
    std::vector<MeasureCacheEntry> entries;
    for (const auto& [task, scheds] : map) {
        for (const auto& [sched, latency] : scheds) {
            entries.push_back({task, sched, latency});
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const MeasureCacheEntry& a, const MeasureCacheEntry& b) {
                  return a.task_hash != b.task_hash
                             ? a.task_hash < b.task_hash
                             : a.sched_hash < b.sched_hash;
              });
    return entries;
}

/** Serialize @p map in canonical order (v2: CRC-framed). */
std::string
encodeSnapshot(const SnapshotMap& map)
{
    const std::vector<MeasureCacheEntry> entries = flattenSorted(map);
    std::string body;
    body.reserve(entries.size() * kCacheEntryBytes);
    for (const auto& e : entries) {
        putU64(body, e.task_hash);
        putU64(body, e.sched_hash);
        putU64(body, std::bit_cast<uint64_t>(e.latency));
    }
    std::string bytes;
    bytes.reserve(kCacheHeaderBytes + body.size());
    putU32(bytes, kCacheMagic);
    putU32(bytes, kCacheVersion);
    putU64(bytes, entries.size());
    putU32(bytes, io::crc32(body));
    bytes += body;
    return bytes;
}

/** File-name-safe form of a model key ("Pruner/PaCM/a100" ->
 *  "Pruner_PaCM_a100"). */
std::string
sanitizeKey(const std::string& key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '-';
        out.push_back(safe ? c : '_');
    }
    return out.empty() ? std::string("default") : out;
}

} // namespace

ArtifactDb::ArtifactDb(std::string root, size_t num_shards)
    : root_(std::move(root))
{
    PRUNER_CHECK_MSG(!root_.empty(), "ArtifactDb root must be non-empty");
    num_shards = std::max<size_t>(num_shards, 1);
    for (const char* sub : {"records", "models"}) {
        std::error_code ec;
        fs::create_directories(fs::path(root_) / sub, ec);
        if (ec) {
            PRUNER_WARN("cannot create ArtifactDb directory "
                        << (fs::path(root_) / sub).string() << ": "
                        << ec.message()
                        << "; persistence disabled for this store");
            writable_ = false;
            ++io_failures_;
            break;
        }
    }
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
        auto shard = std::make_unique<Shard>();
        std::ostringstream oss;
        oss << "shard_" << std::setw(4) << std::setfill('0') << i << ".log";
        shard->path = (fs::path(root_) / "records" / oss.str()).string();
        shards_.push_back(std::move(shard));
    }
    // Load every shard log present, dispatching each line to its in-memory
    // shard by task hash — which *file* a record sits in is a layout
    // detail, so stores written with a different shard count (or whose
    // shard files were concatenated) still load fully.
    std::vector<std::string> existing;
    std::error_code iter_ec;
    for (const auto& entry :
         fs::directory_iterator(fs::path(root_) / "records", iter_ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard_", 0) == 0 &&
            entry.path().extension() == ".log") {
            existing.push_back(entry.path().string());
        }
    }
    if (iter_ec && writable_) {
        PRUNER_WARN("cannot scan ArtifactDb records under "
                    << root_ << ": " << iter_ec.message()
                    << "; starting from an empty record index");
        ++io_failures_;
    }
    std::sort(existing.begin(), existing.end());
    for (const auto& path : existing) {
        loadShardFile(path);
    }
}

StorageHealth
ArtifactDb::storageHealth() const
{
    StorageHealth h;
    h.quarantined_files = quarantined_files_.load(std::memory_order_relaxed);
    h.torn_tails = torn_tails_.load(std::memory_order_relaxed);
    h.corrupt_lines = corrupt_lines_.load(std::memory_order_relaxed);
    h.io_failures = io_failures_.load(std::memory_order_relaxed);
    return h;
}

ArtifactDb::Shard&
ArtifactDb::shardFor(uint64_t task_hash) const
{
    return *shards_[task_hash % shards_.size()];
}

void
ArtifactDb::loadShardFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return; // fresh shard, no log yet
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    // A crash mid-append leaves a final line without its newline.
    // Truncate the file itself, not just the in-memory view: the shard
    // stays append-mode, and a later append must not concatenate a fresh
    // record onto the torn fragment.
    size_t usable = bytes.size();
    if (usable > 0 && bytes[usable - 1] != '\n') {
        const size_t last_nl = bytes.find_last_of('\n');
        const size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
        PRUNER_WARN("record shard '"
                    << path << "' has a torn final line ("
                    << usable - keep
                    << " bytes); truncating to the last complete line");
        std::error_code ec;
        fs::resize_file(path, keep, ec);
        if (ec) {
            PRUNER_WARN("cannot truncate '" << path << "': " << ec.message()
                                            << "; ignoring the torn tail "
                                               "in memory only");
            ++io_failures_;
        }
        ++torn_tails_;
        usable = keep;
    }

    size_t good = 0;
    size_t bad = 0;
    size_t pos = 0;
    while (pos < usable) {
        const size_t eol = bytes.find('\n', pos);
        std::string line = bytes.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) {
            continue;
        }
        if (io::checkLineCrc(line) == io::LineCrc::Mismatch) {
            ++bad;
            continue;
        }
        RawRecordLine raw;
        if (!lineToRawRecord(line, &raw)) {
            ++bad; // malformed line: crash-tolerant skip
            continue;
        }
        ++good;
        Shard& shard = shardFor(raw.task_hash);
        ++shard.lines;
        auto& per_task = shard.by_task[raw.task_hash];
        const uint64_t sched_hash = raw.sch.hash();
        auto it = per_task.find(sched_hash);
        if (it == per_task.end() || raw.latency < it->second.latency) {
            per_task[sched_hash] = {std::move(raw.sch), raw.latency};
        }
    }
    if (bad > 0) {
        corrupt_lines_ += bad;
        if (good == 0) {
            // Nothing in the file is usable: move the whole shard aside so
            // the next open does not re-scan the same poison.
            const std::string moved = io::quarantineFile(path);
            PRUNER_WARN("record shard '"
                        << path << "' is wholly corrupt (" << bad
                        << " line(s)); "
                        << (moved.empty() ? "ignoring it"
                                          : "quarantined to '" + moved + "'"));
            ++quarantined_files_;
        } else {
            PRUNER_WARN("record shard '" << path << "': skipped " << bad
                                         << " corrupt line(s)");
        }
    }
}

size_t
ArtifactDb::appendRecords(const std::vector<MeasuredRecord>& records)
{
    if (!writable_) {
        return 0; // the constructor already warned once
    }
    // Group by shard first so each shard is locked (and its log opened)
    // at most once per batch.
    std::vector<std::vector<const MeasuredRecord*>> per_shard(
        shards_.size());
    for (const auto& record : records) {
        if (!std::isfinite(record.latency) || record.latency <= 0.0) {
            continue;
        }
        per_shard[record.task.hash() % shards_.size()].push_back(&record);
    }
    size_t written = 0;
    for (size_t s = 0; s < per_shard.size(); ++s) {
        if (per_shard[s].empty()) {
            continue;
        }
        Shard& shard = *shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        // Stage the whole batch, append it in one durable write, and only
        // then index: the in-memory dedup map must only claim records that
        // actually reached the log (a later improvement would otherwise be
        // deduped against a line that was never written).
        std::string batch;
        std::vector<std::pair<const MeasuredRecord*, uint64_t>> staged;
        std::unordered_map<uint64_t, double> staged_best;
        for (const MeasuredRecord* record : per_shard[s]) {
            const uint64_t task_hash = record->task.hash();
            const uint64_t sched_hash = record->sch.hash();
            double best = std::numeric_limits<double>::infinity();
            auto& per_task = shard.by_task[task_hash];
            if (const auto it = per_task.find(sched_hash);
                it != per_task.end()) {
                best = it->second.latency;
            }
            const uint64_t pair_key = hashCombine(task_hash, sched_hash);
            if (const auto it = staged_best.find(pair_key);
                it != staged_best.end()) {
                best = std::min(best, it->second);
            }
            if (best <= record->latency) {
                continue; // already stored at least as good: no log growth
            }
            batch += io::withLineCrc(recordToLine(*record));
            batch.push_back('\n');
            staged_best[pair_key] = record->latency;
            staged.emplace_back(record, sched_hash);
        }
        if (staged.empty()) {
            continue;
        }
        if (!io::appendFile(shard.path, batch)) {
            // A failed append (ENOSPC, torn write, …) drops this batch
            // from persistence but never from the run: the records stay in
            // the live TuningRecordDb and tuning continues. A torn tail
            // left by a partial append is truncated by the next load.
            PRUNER_WARN("record append to '"
                        << shard.path << "' failed; " << staged.size()
                        << " record(s) not persisted (tuning continues)");
            ++io_failures_;
            continue;
        }
        for (const auto& [record, sched_hash] : staged) {
            shard.by_task[record->task.hash()][sched_hash] = {
                record->sch, record->latency};
            ++shard.lines;
            ++written;
        }
    }
    return written;
}

size_t
ArtifactDb::recordCount() const
{
    size_t total = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->lines;
    }
    return total;
}

std::vector<ServedSchedule>
ArtifactDb::topK(const SubgraphTask& task, size_t k) const
{
    Shard& shard = shardFor(task.hash());
    std::vector<ServedSchedule> out;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.by_task.find(task.hash());
        if (it == shard.by_task.end()) {
            return out;
        }
        out.reserve(it->second.size());
        for (const auto& [sched_hash, stored] : it->second) {
            out.push_back({stored.sch, stored.latency, sched_hash});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ServedSchedule& a, const ServedSchedule& b) {
                  return a.latency != b.latency
                             ? a.latency < b.latency
                             : a.sched_hash < b.sched_hash;
              });
    if (out.size() > k) {
        out.resize(k);
    }
    return out;
}

std::optional<ServedSchedule>
ArtifactDb::bestSchedule(const SubgraphTask& task) const
{
    auto top = topK(task, 1);
    if (top.empty()) {
        return std::nullopt;
    }
    return std::move(top.front());
}

void
ArtifactDb::saveMeasureCache(const MeasureCache& cache)
{
    if (!writable_) {
        return;
    }
    const std::string path =
        (fs::path(root_) / "measure_cache.bin").string();
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    // Merge with whatever is already persisted so concurrent sessions
    // accumulate instead of clobbering each other; the live cache wins on
    // conflicting pairs (its value is fresher). A corrupt on-disk
    // snapshot contributes nothing to the merge and is overwritten by the
    // fresh save (quarantining is the loader's job).
    SnapshotMap merged;
    readSnapshotFile(path, &merged);
    for (const auto& e : cache.exportEntries()) {
        merged[e.task_hash][e.sched_hash] = e.latency;
    }
    if (!io::atomicWriteFile(path, encodeSnapshot(merged))) {
        PRUNER_WARN("cannot persist measure-cache snapshot to '"
                    << path << "'; tuning continues without it");
        ++io_failures_;
    }
}

size_t
ArtifactDb::loadMeasureCache(MeasureCache* cache) const
{
    PRUNER_CHECK(cache != nullptr);
    if (cache->capacity() == 0) {
        return 0; // caching disabled: don't pay the snapshot read
    }
    const std::string path =
        (fs::path(root_) / "measure_cache.bin").string();
    SnapshotMap map;
    {
        std::lock_guard<std::mutex> lock(snapshot_mutex_);
        if (readSnapshotFile(path, &map) == SnapshotRead::Corrupt) {
            const std::string moved = io::quarantineFile(path);
            PRUNER_WARN("measure-cache snapshot '"
                        << path << "' is corrupt; "
                        << (moved.empty() ? "ignoring it"
                                          : "quarantined to '" + moved + "'")
                        << " — starting with an empty cache");
            ++quarantined_files_;
            return 0;
        }
    }
    // Insert in canonical sorted order so the restored LRU state is
    // deterministic. A snapshot larger than the cache keeps its canonical
    // tail (the earlier inserts get evicted) — report only what the cache
    // can actually hold.
    const std::vector<MeasureCacheEntry> entries = flattenSorted(map);
    if (entries.size() > cache->capacity()) {
        PRUNER_INFO("measure-cache snapshot ("
                    << entries.size() << " entries) exceeds cache capacity ("
                    << cache->capacity()
                    << "); oldest canonical entries will be evicted");
    }
    for (const auto& e : entries) {
        cache->insert(e.task_hash, e.sched_hash, e.latency);
    }
    return std::min(entries.size(), cache->capacity());
}

std::string
ArtifactDb::modelPath(const std::string& key) const
{
    return (fs::path(root_) / "models" / (sanitizeKey(key) + ".params"))
        .string();
}

void
ArtifactDb::saveModelParams(const std::string& key,
                            const std::vector<double>& params)
{
    if (!writable_) {
        return;
    }
    // saveParams writes text; route it through the same tmp+rename dance
    // by writing to a sibling and renaming. A checkpoint that cannot be
    // written is a warning, not a crash — the next run simply trains from
    // scratch.
    const std::string path = modelPath(key);
    const std::string tmp = path + ".tmp";
    try {
        saveParams(tmp, params);
    } catch (const std::exception& e) {
        PRUNER_WARN("cannot write model checkpoint '" << tmp
                                                      << "': " << e.what());
        ++io_failures_;
        std::error_code ec;
        fs::remove(tmp, ec);
        return;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        PRUNER_WARN("cannot rename " << tmp << " to " << path << ": "
                                     << ec.message());
        ++io_failures_;
        fs::remove(tmp, ec);
    }
}

std::optional<std::vector<double>>
ArtifactDb::tryLoadModelParams(const std::string& key) const
{
    const std::string path = modelPath(key);
    // std::exception, not just FatalError: a corrupt header can make
    // loadParams throw length_error/bad_alloc from the size allocation.
    try {
        return loadParams(path);
    } catch (const std::exception& e) {
        std::error_code ec;
        if (fs::exists(path, ec)) {
            // Present but unparseable: quarantine so the next load does
            // not trip over the same poison.
            const std::string moved = io::quarantineFile(path);
            PRUNER_WARN("model checkpoint '"
                        << path << "' is corrupt (" << e.what() << "); "
                        << (moved.empty()
                                ? "ignoring it"
                                : "quarantined to '" + moved + "'")
                        << " — the model trains from scratch");
            ++quarantined_files_;
        }
        return std::nullopt;
    }
}

WarmStartStats
ArtifactDb::warmStart(const std::vector<SubgraphTask>& known_tasks,
                      TuningRecordDb* records, MeasureCache* cache,
                      CostModel* model, const std::string& model_key) const
{
    WarmStartStats stats;
    if (records != nullptr) {
        for (const auto& task : known_tasks) {
            // Worst-first replay: the incumbent ends up most recent, so
            // recentWindow-based online training sees the best history.
            auto stored = topK(task, static_cast<size_t>(-1));
            for (auto it = stored.rbegin(); it != stored.rend(); ++it) {
                records->add({task, it->sch, it->latency});
                ++stats.records_replayed;
            }
        }
    }
    if (cache != nullptr) {
        stats.cache_entries = loadMeasureCache(cache);
    }
    if (model != nullptr) {
        if (auto params = tryLoadModelParams(model_key)) {
            const bool all_finite =
                std::all_of(params->begin(), params->end(),
                            [](double v) { return std::isfinite(v); });
            const size_t expected = model->getParams().size();
            if (all_finite && params->size() == expected) {
                model->setParams(*params);
                stats.model_restored = true;
            } else {
                // Never install garbage weights (and never silently zero
                // them either): the checkpoint parsed but its content is
                // unusable, so say so and train from scratch.
                PRUNER_WARN("model checkpoint '"
                            << modelPath(model_key) << "' rejected ("
                            << (all_finite
                                    ? "parameter count " +
                                          std::to_string(params->size()) +
                                          " != expected " +
                                          std::to_string(expected)
                                    : std::string("non-finite parameters"))
                            << "); the model trains from scratch");
                ++corrupt_lines_;
            }
        }
    }
    return stats;
}

} // namespace pruner
