#pragma once

/**
 * @file artifact_session.hpp
 * Per-tune() persistence wiring over an ArtifactDb.
 *
 * Every search policy's tune() loop does the same three things with the
 * artifact store: warm-start its run state from it, stream each round's
 * new measurements into it, and snapshot the measure cache / cost model at
 * the end. ArtifactSession keeps that wiring in one place and resolves the
 * TuneOptions handle convention — a borrowed shared ArtifactDb (one per
 * bench binary) takes precedence over an owned store opened from a path,
 * and both empty means persistence is off and every call is a no-op.
 */

#include <memory>
#include <string>
#include <vector>

#include "db/artifact_db.hpp"
#include "ir/workload_registry.hpp"

namespace pruner {

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
} // namespace obs

/** Checkpoint key for a (policy, model, device) combination, e.g.
 *  "MoA-Pruner/PaCM/a100". */
std::string artifactModelKey(const std::string& policy,
                             const std::string& model,
                             const std::string& device);

/** One tuning run's view of the persistent artifact store. */
class ArtifactSession
{
  public:
    /** @param borrowed  shared store (wins when non-null, not owned)
     *  @param path      directory to open when @p borrowed is null;
     *                   "" = persistence disabled */
    ArtifactSession(ArtifactDb* borrowed, const std::string& path);

    /** False when persistence is disabled for this run. */
    bool enabled() const { return db_ != nullptr; }
    ArtifactDb* db() const { return db_; }

    /** Bind db_* counters (warm records/cache entries replayed, records
     *  appended) and the storage-health gauges (quarantined files, torn
     *  tails, corrupt lines, IO failures — Execution channel) to
     *  @p metrics. nullptr unbinds. Pure accounting. */
    void bindMetrics(obs::MetricsRegistry* metrics);

    /** Warm-start the run state from the store (see ArtifactDb::warmStart);
     *  any sink may be nullptr to skip that artifact. No-op when
     *  disabled. */
    WarmStartStats warmStart(const Workload& workload,
                             TuningRecordDb* records, MeasureCache* cache,
                             CostModel* model,
                             const std::string& model_key = "") const;

    /** Durably append one measured batch (non-finite latencies and pairs
     *  already stored at least as good are skipped). No-op when
     *  disabled. */
    void onMeasured(const SubgraphTask& task,
                    const std::vector<Schedule>& candidates,
                    const std::vector<double>& latencies) const;

    /** End-of-run snapshots: persist the measure cache and/or a model
     *  checkpoint. Either pointer may be nullptr. No-op when disabled. */
    void finish(const MeasureCache* cache, CostModel* model,
                const std::string& model_key = "") const;

  private:
    /** Counter handles (null until bindMetrics; writes are null-safe).
     *  Mutable: the session's methods are const — they mutate the store,
     *  not the session — and accounting follows the same convention. */
    struct IoCounters
    {
        obs::Counter* warm_records = nullptr;
        obs::Counter* warm_cache_entries = nullptr;
        obs::Counter* records_appended = nullptr;
        /** Absolute StorageHealth values (gauges, so re-exporting the
         *  same shared store twice never double-counts). */
        obs::Gauge* quarantined_files = nullptr;
        obs::Gauge* torn_tails = nullptr;
        obs::Gauge* corrupt_lines = nullptr;
        obs::Gauge* io_failures = nullptr;
    };

    /** Refresh the storage-health gauges from db_->storageHealth(). */
    void exportHealth() const;

    ArtifactDb* db_ = nullptr;
    std::unique_ptr<ArtifactDb> owned_;
    mutable IoCounters counters_;
};

} // namespace pruner
