#include "db/artifact_session.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "support/logging.hpp"

namespace pruner {

std::string
artifactModelKey(const std::string& policy, const std::string& model,
                 const std::string& device)
{
    return policy + "/" + model + "/" + device;
}

ArtifactSession::ArtifactSession(ArtifactDb* borrowed,
                                 const std::string& path)
{
    if (borrowed != nullptr) {
        db_ = borrowed;
    } else if (!path.empty()) {
        owned_ = std::make_unique<ArtifactDb>(path);
        db_ = owned_.get();
    }
}

void
ArtifactSession::bindMetrics(obs::MetricsRegistry* metrics)
{
    if (metrics == nullptr) {
        counters_ = {};
        return;
    }
    counters_.warm_records = metrics->counter("db_warm_records_total");
    counters_.warm_cache_entries =
        metrics->counter("db_warm_cache_entries_total");
    counters_.records_appended =
        metrics->counter("db_records_appended_total");
    // Storage health is execution-dependent (it reflects how the disk
    // behaved, not the tuning trajectory) and exported as absolute gauges
    // so a shared store never double-counts across sessions.
    using obs::MetricChannel;
    counters_.quarantined_files = metrics->gauge(
        "db_quarantined_files", MetricChannel::Execution);
    counters_.torn_tails =
        metrics->gauge("db_torn_tails", MetricChannel::Execution);
    counters_.corrupt_lines =
        metrics->gauge("db_corrupt_lines", MetricChannel::Execution);
    counters_.io_failures =
        metrics->gauge("db_io_failures", MetricChannel::Execution);
    exportHealth();
}

void
ArtifactSession::exportHealth() const
{
    if (db_ == nullptr || counters_.quarantined_files == nullptr) {
        return;
    }
    const StorageHealth h = db_->storageHealth();
    counters_.quarantined_files->set(static_cast<int64_t>(h.quarantined_files));
    counters_.torn_tails->set(static_cast<int64_t>(h.torn_tails));
    counters_.corrupt_lines->set(static_cast<int64_t>(h.corrupt_lines));
    counters_.io_failures->set(static_cast<int64_t>(h.io_failures));
}

WarmStartStats
ArtifactSession::warmStart(const Workload& workload, TuningRecordDb* records,
                           MeasureCache* cache, CostModel* model,
                           const std::string& model_key) const
{
    if (db_ == nullptr) {
        return {};
    }
    std::vector<SubgraphTask> tasks;
    tasks.reserve(workload.tasks.size());
    for (const auto& inst : workload.tasks) {
        tasks.push_back(inst.task);
    }
    const WarmStartStats stats =
        db_->warmStart(tasks, records, cache, model, model_key);
    obs::counterAdd(counters_.warm_records, stats.records_replayed);
    obs::counterAdd(counters_.warm_cache_entries, stats.cache_entries);
    exportHealth();
    return stats;
}

void
ArtifactSession::onMeasured(const SubgraphTask& task,
                            const std::vector<Schedule>& candidates,
                            const std::vector<double>& latencies) const
{
    if (db_ == nullptr) {
        return;
    }
    PRUNER_CHECK(candidates.size() == latencies.size());
    std::vector<MeasuredRecord> finite;
    finite.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (std::isfinite(latencies[i]) && latencies[i] > 0.0) {
            finite.push_back({task, candidates[i], latencies[i]});
        }
    }
    if (!finite.empty()) {
        db_->appendRecords(finite);
        obs::counterAdd(counters_.records_appended, finite.size());
    }
}

void
ArtifactSession::finish(const MeasureCache* cache, CostModel* model,
                        const std::string& model_key) const
{
    if (db_ == nullptr) {
        return;
    }
    if (cache != nullptr) {
        db_->saveMeasureCache(*cache);
    }
    if (model != nullptr) {
        db_->saveModelParams(model_key, model->getParams());
    }
    exportHealth();
}

} // namespace pruner
