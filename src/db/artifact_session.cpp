#include "db/artifact_session.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace pruner {

std::string
artifactModelKey(const std::string& policy, const std::string& model,
                 const std::string& device)
{
    return policy + "/" + model + "/" + device;
}

ArtifactSession::ArtifactSession(ArtifactDb* borrowed,
                                 const std::string& path)
{
    if (borrowed != nullptr) {
        db_ = borrowed;
    } else if (!path.empty()) {
        owned_ = std::make_unique<ArtifactDb>(path);
        db_ = owned_.get();
    }
}

WarmStartStats
ArtifactSession::warmStart(const Workload& workload, TuningRecordDb* records,
                           MeasureCache* cache, CostModel* model,
                           const std::string& model_key) const
{
    if (db_ == nullptr) {
        return {};
    }
    std::vector<SubgraphTask> tasks;
    tasks.reserve(workload.tasks.size());
    for (const auto& inst : workload.tasks) {
        tasks.push_back(inst.task);
    }
    return db_->warmStart(tasks, records, cache, model, model_key);
}

void
ArtifactSession::onMeasured(const SubgraphTask& task,
                            const std::vector<Schedule>& candidates,
                            const std::vector<double>& latencies) const
{
    if (db_ == nullptr) {
        return;
    }
    PRUNER_CHECK(candidates.size() == latencies.size());
    std::vector<MeasuredRecord> finite;
    finite.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (std::isfinite(latencies[i]) && latencies[i] > 0.0) {
            finite.push_back({task, candidates[i], latencies[i]});
        }
    }
    if (!finite.empty()) {
        db_->appendRecords(finite);
    }
}

void
ArtifactSession::finish(const MeasureCache* cache, CostModel* model,
                        const std::string& model_key) const
{
    if (db_ == nullptr) {
        return;
    }
    if (cache != nullptr) {
        db_->saveMeasureCache(*cache);
    }
    if (model != nullptr) {
        db_->saveModelParams(model_key, model->getParams());
    }
}

} // namespace pruner
