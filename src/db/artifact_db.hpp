#pragma once

/**
 * @file artifact_db.hpp
 * Persistent tuning-artifact database: one on-disk store for the three
 * artifacts a tuning run produces and the next run wants back.
 *
 * The paper's offline scenario assumes tuned history can be reused — warm-
 * starting from prior measurements is where the biggest speedups come
 * from — so everything a run learns is persisted under one root directory:
 *
 *   <root>/records/shard_NNNN.log   measured records, append-only text
 *                                   lines (the record_log codec), sharded
 *                                   by task hash so concurrent sessions
 *                                   append without a global lock
 *   <root>/measure_cache.bin        versioned, byte-deterministic binary
 *                                   snapshot of the MeasureCache keyed by
 *                                   (task hash, schedule hash) — repeated
 *                                   runs pay zero simulated measurements
 *                                   for shared candidates
 *   <root>/models/<key>.params      cost-model weight checkpoints through
 *                                   the nn/serialize flat-vector format
 *
 * Storage faults never terminate a tuning run. Record lines are CRC-framed
 * (io::withLineCrc); loading skips lines whose CRC mismatches, physically
 * truncates a torn final line (so later appends cannot concatenate onto
 * it), and tolerates pre-CRC logs. Snapshot writes go through
 * io::atomicWriteFile (tmp + rename, bounded retries); corrupt snapshots
 * and model checkpoints are quarantined to "<path>.corrupt" and skipped.
 * Every degradation warns once and bumps a StorageHealth counter; an
 * unwritable root disables persistence for the instance instead of
 * throwing. All queries and writes are thread-safe; record state is
 * sharded per task-hash so the existing ThreadPool workers (and multiple
 * tuning sessions sharing one ArtifactDb) contend only when touching the
 * same shard.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.hpp"
#include "search/measure_cache.hpp"
#include "search/tuning_record.hpp"

namespace pruner {

/** One schedule served from the store (see ArtifactDb::topK). */
struct ServedSchedule
{
    Schedule sch;
    double latency = 0.0;    ///< best persisted latency for this schedule
    uint64_t sched_hash = 0; ///< sch.hash(), precomputed by the store
};

/** What ArtifactDb::warmStart restored into a run's state. */
struct WarmStartStats
{
    size_t records_replayed = 0;  ///< records replayed into TuningRecordDb
    size_t cache_entries = 0;     ///< snapshot entries loaded into the cache
    bool model_restored = false;  ///< checkpoint applied to the cost model
};

/** Cumulative storage-fault accounting for one ArtifactDb instance (see
 *  ArtifactDb::storageHealth). All zeros on a healthy store. */
struct StorageHealth
{
    size_t quarantined_files = 0; ///< corrupt artifacts moved to *.corrupt
    size_t torn_tails = 0;        ///< torn final lines truncated on load
    size_t corrupt_lines = 0;     ///< CRC-mismatched / malformed lines skipped
    size_t io_failures = 0;       ///< failed writes degraded to warnings
};

/**
 * The persistent tuning-artifact store. Open one per experiment directory;
 * the instance is safe to share across threads and tuning sessions.
 */
class ArtifactDb
{
  public:
    /** Opens (and creates if missing) the store rooted at @p root, loading
     *  the record index from any existing shard logs. @p num_shards only
     *  applies to newly written records; logs from stores with a different
     *  shard count still load (sharding is a layout detail, not a key).
     *  An unwritable root degrades to a disabled store (warn + counter)
     *  instead of throwing — the tuner then runs without persistence. */
    explicit ArtifactDb(std::string root, size_t num_shards = kDefaultShards);

    ArtifactDb(const ArtifactDb&) = delete;
    ArtifactDb& operator=(const ArtifactDb&) = delete;

    const std::string& root() const { return root_; }
    size_t numShards() const { return shards_.size(); }

    /** False when the root directories could not be created; every write
     *  is then a warned no-op and every read serves the empty store. */
    bool writable() const { return writable_; }

    /** Storage-fault counters accumulated by this instance. */
    StorageHealth storageHealth() const;

    // ------------------------------------------------------------ records

    /** Durably append measured records. Non-finite latencies are skipped
     *  (failed launches live in the cache snapshot, not the record log),
     *  and a (task, schedule) pair already stored with an equal-or-better
     *  latency is not re-written — replayed runs do not grow the log.
     *  Returns the number of lines actually written. */
    size_t appendRecords(const std::vector<MeasuredRecord>& records);

    /** Number of record lines currently retained (on disk + this session). */
    size_t recordCount() const;

    /** The up-to-k best distinct schedules stored for @p task, ascending
     *  by latency (ties broken by schedule hash, so the order is stable
     *  across runs and platforms). */
    std::vector<ServedSchedule> topK(const SubgraphTask& task,
                                     size_t k) const;

    /** Best stored schedule for @p task; nullopt if none. */
    std::optional<ServedSchedule> bestSchedule(const SubgraphTask& task) const;

    // --------------------------------------------- measure-cache snapshot

    /** Persist @p cache, merged with any snapshot already on disk (the
     *  cache wins on conflicting pairs). Entries are written sorted by
     *  (task hash, schedule hash), so saving the same state twice produces
     *  byte-identical files. */
    void saveMeasureCache(const MeasureCache& cache);

    /** Load the snapshot (if any) into @p cache via insert(); returns the
     *  number of entries restored. Missing or unreadable snapshots load
     *  nothing; a legacy (v1, pre-CRC) truncated snapshot loads its intact
     *  prefix; a CRC-framed snapshot that fails its checksum is
     *  quarantined and loads nothing. */
    size_t loadMeasureCache(MeasureCache* cache) const;

    // ------------------------------------------------- model checkpoints

    /** Persist a flat parameter snapshot under @p key (sanitized into a
     *  file name), e.g. key = "Pruner/PaCM/a100". */
    void saveModelParams(const std::string& key,
                         const std::vector<double>& params);

    /** Load the checkpoint stored under @p key; nullopt if missing or
     *  malformed. A present-but-malformed checkpoint is quarantined to
     *  "<path>.corrupt" (warn + counter) so the next load starts cold. */
    std::optional<std::vector<double>>
    tryLoadModelParams(const std::string& key) const;

    // ---------------------------------------------------------- warm start

    /**
     * Restore a tuning run's state from the store:
     *  - stored records whose task hash matches one of @p known_tasks are
     *    replayed into @p records (worst-first, so the incumbent is the
     *    most recent entry),
     *  - the measure-cache snapshot is loaded into @p cache,
     *  - the checkpoint under @p model_key is applied to @p model when its
     *    parameter count matches.
     * Any of the three sinks may be nullptr to skip that artifact.
     */
    WarmStartStats warmStart(const std::vector<SubgraphTask>& known_tasks,
                             TuningRecordDb* records, MeasureCache* cache,
                             CostModel* model,
                             const std::string& model_key = "") const;

    static constexpr size_t kDefaultShards = 8;

  private:
    /** Best stored latency per distinct schedule of one task. */
    struct StoredSchedule
    {
        Schedule sch;
        double latency = 0.0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::string path;
        /** task hash -> schedule hash -> best stored record. */
        std::unordered_map<uint64_t,
                           std::unordered_map<uint64_t, StoredSchedule>>
            by_task;
        size_t lines = 0;
    };

    Shard& shardFor(uint64_t task_hash) const;
    void loadShardFile(const std::string& path);
    std::string modelPath(const std::string& key) const;

    std::string root_;
    std::vector<std::unique_ptr<Shard>> shards_;
    /** Serializes snapshot read-merge-write cycles within this process. */
    mutable std::mutex snapshot_mutex_;
    bool writable_ = true;
    /** Mutable: loads are const but still account the faults they survive
     *  (same convention as ArtifactSession's counters). */
    mutable std::atomic<size_t> quarantined_files_{0};
    mutable std::atomic<size_t> torn_tails_{0};
    mutable std::atomic<size_t> corrupt_lines_{0};
    mutable std::atomic<size_t> io_failures_{0};
};

} // namespace pruner
