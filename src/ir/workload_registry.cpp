#include "ir/workload_registry.hpp"

#include "support/logging.hpp"

namespace pruner {

double
Workload::endToEndLatency(const std::vector<double>& per_task) const
{
    PRUNER_CHECK(per_task.size() == tasks.size());
    double total = 0.0;
    for (size_t i = 0; i < tasks.size(); ++i) {
        total += tasks[i].weight * per_task[i];
    }
    return total;
}

double
Workload::totalWeight() const
{
    double total = 0.0;
    for (const auto& inst : tasks) {
        total += inst.weight;
    }
    return total;
}

namespace workloads {

namespace {

/** Append one weighted task. */
void
add(Workload& w, SubgraphTask task, double weight)
{
    w.tasks.push_back({std::move(task), weight});
}

/**
 * Append the subgraphs of one standard transformer encoder/decoder stack:
 * fused QKV projection, the two attention matmuls, softmax, output
 * projection, the two FFN matmuls, and the fused layernorm/residual chain.
 */
void
addTransformerStack(Workload& w, const std::string& prefix, int layers,
                    int heads, int hidden, int intermediate, int batch,
                    int seq, DType dtype)
{
    PRUNER_CHECK(hidden % heads == 0);
    const int head_dim = hidden / heads;
    const int64_t tokens = static_cast<int64_t>(batch) * seq;
    add(w, makeGemm(prefix + "_qkv", 1, tokens, 3ll * hidden, hidden, dtype),
        layers);
    add(w,
        makeGemm(prefix + "_qkt", static_cast<int64_t>(batch) * heads, seq,
                 seq, head_dim, dtype, /*fused_tail=*/false),
        layers);
    add(w,
        makeReductionOp(prefix + "_softmax",
                        static_cast<int64_t>(batch) * heads * seq, seq,
                        dtype),
        layers);
    add(w,
        makeGemm(prefix + "_attnv", static_cast<int64_t>(batch) * heads, seq,
                 head_dim, seq, dtype, /*fused_tail=*/false),
        layers);
    add(w, makeGemm(prefix + "_proj", 1, tokens, hidden, hidden, dtype),
        layers);
    add(w, makeGemm(prefix + "_ffn1", 1, tokens, intermediate, hidden, dtype),
        layers);
    add(w, makeGemm(prefix + "_ffn2", 1, tokens, hidden, intermediate, dtype),
        layers);
    add(w, makeElementwise(prefix + "_lnres", tokens * hidden, 8.0, dtype),
        2.0 * layers);
}

} // namespace

Workload
resnet50(int batch)
{
    Workload w;
    w.name = "R50_b" + std::to_string(batch);
    const int64_t b = batch;
    add(w, makeConv2d("r50_conv1", b, 224, 224, 3, 64, 7, 2), 1);
    // Stage 2 (56x56, width 64 -> 256).
    add(w, makeConv2d("r50_s2_1x1a", b, 56, 56, 64, 64, 1, 1), 3);
    add(w, makeConv2d("r50_s2_3x3", b, 56, 56, 64, 64, 3, 1), 3);
    add(w, makeConv2d("r50_s2_1x1b", b, 56, 56, 64, 256, 1, 1), 3);
    add(w, makeConv2d("r50_s2_1x1c", b, 56, 56, 256, 64, 1, 1), 2);
    // Stage 3 (28x28, width 128 -> 512).
    add(w, makeConv2d("r50_s3_down", b, 56, 56, 256, 128, 1, 2), 1);
    add(w, makeConv2d("r50_s3_3x3", b, 28, 28, 128, 128, 3, 1), 4);
    add(w, makeConv2d("r50_s3_1x1b", b, 28, 28, 128, 512, 1, 1), 4);
    add(w, makeConv2d("r50_s3_1x1c", b, 28, 28, 512, 128, 1, 1), 3);
    // Stage 4 (14x14, width 256 -> 1024).
    add(w, makeConv2d("r50_s4_down", b, 28, 28, 512, 256, 1, 2), 1);
    add(w, makeConv2d("r50_s4_3x3", b, 14, 14, 256, 256, 3, 1), 6);
    add(w, makeConv2d("r50_s4_1x1b", b, 14, 14, 256, 1024, 1, 1), 6);
    add(w, makeConv2d("r50_s4_1x1c", b, 14, 14, 1024, 256, 1, 1), 5);
    // Stage 5 (7x7, width 512 -> 2048).
    add(w, makeConv2d("r50_s5_down", b, 14, 14, 1024, 512, 1, 2), 1);
    add(w, makeConv2d("r50_s5_3x3", b, 7, 7, 512, 512, 3, 1), 3);
    add(w, makeConv2d("r50_s5_1x1b", b, 7, 7, 512, 2048, 1, 1), 3);
    add(w, makeConv2d("r50_s5_1x1c", b, 7, 7, 2048, 512, 1, 1), 2);
    add(w, makeGemm("r50_fc", 1, b, 1000, 2048), 1);
    add(w, makeElementwise("r50_res_add", b * 56 * 56 * 256, 2.0), 4);
    add(w, makeElementwise("r50_res_add2", b * 14 * 14 * 1024, 2.0), 6);
    return w;
}

Workload
wideResnet50(int batch)
{
    Workload w;
    w.name = "WR50_b" + std::to_string(batch);
    const int64_t b = batch;
    add(w, makeConv2d("wr50_conv1", b, 224, 224, 3, 64, 7, 2), 1);
    add(w, makeConv2d("wr50_s2_1x1a", b, 56, 56, 64, 128, 1, 1), 3);
    add(w, makeConv2d("wr50_s2_3x3", b, 56, 56, 128, 128, 3, 1), 3);
    add(w, makeConv2d("wr50_s2_1x1b", b, 56, 56, 128, 256, 1, 1), 3);
    add(w, makeConv2d("wr50_s3_3x3", b, 28, 28, 256, 256, 3, 1), 4);
    add(w, makeConv2d("wr50_s3_1x1b", b, 28, 28, 256, 512, 1, 1), 4);
    add(w, makeConv2d("wr50_s4_3x3", b, 14, 14, 512, 512, 3, 1), 6);
    add(w, makeConv2d("wr50_s4_1x1b", b, 14, 14, 512, 1024, 1, 1), 6);
    add(w, makeConv2d("wr50_s5_3x3", b, 7, 7, 1024, 1024, 3, 1), 3);
    add(w, makeConv2d("wr50_s5_1x1b", b, 7, 7, 1024, 2048, 1, 1), 3);
    add(w, makeGemm("wr50_fc", 1, b, 1000, 2048), 1);
    add(w, makeElementwise("wr50_res_add", b * 56 * 56 * 256, 2.0), 4);
    return w;
}

Workload
inceptionV3(int batch)
{
    Workload w;
    w.name = "IV3_b" + std::to_string(batch);
    const int64_t b = batch;
    add(w, makeConv2d("iv3_stem1", b, 299, 299, 3, 32, 3, 2), 1);
    add(w, makeConv2d("iv3_stem2", b, 149, 149, 32, 64, 3, 1), 2);
    add(w, makeConv2d("iv3_stem3", b, 73, 73, 64, 192, 3, 1), 1);
    add(w, makeConv2d("iv3_a_1x1", b, 35, 35, 288, 64, 1, 1), 6);
    add(w, makeConv2d("iv3_a_3x3", b, 35, 35, 64, 96, 3, 1), 6);
    add(w, makeConv2d("iv3_a_5x5", b, 35, 35, 48, 64, 5, 1), 3);
    add(w, makeConv2d("iv3_b_1x1", b, 17, 17, 768, 192, 1, 1), 8);
    add(w, makeConv2d("iv3_b_7x1", b, 17, 17, 160, 160, 7, 1), 8);
    add(w, makeConv2d("iv3_c_1x1", b, 8, 8, 2048, 320, 1, 1), 4);
    add(w, makeConv2d("iv3_c_3x3", b, 8, 8, 448, 384, 3, 1), 4);
    add(w, makeGemm("iv3_fc", 1, b, 1000, 2048), 1);
    add(w, makeElementwise("iv3_concat", b * 35 * 35 * 288, 1.0), 6);
    return w;
}

Workload
densenet121(int batch)
{
    Workload w;
    w.name = "D121_b" + std::to_string(batch);
    const int64_t b = batch;
    add(w, makeConv2d("d121_conv1", b, 224, 224, 3, 64, 7, 2), 1);
    add(w, makeConv2d("d121_b1_1x1", b, 56, 56, 256, 128, 1, 1), 6);
    add(w, makeConv2d("d121_b1_3x3", b, 56, 56, 128, 32, 3, 1), 6);
    add(w, makeConv2d("d121_t1", b, 56, 56, 256, 128, 1, 2), 1);
    add(w, makeConv2d("d121_b2_1x1", b, 28, 28, 384, 128, 1, 1), 12);
    add(w, makeConv2d("d121_b2_3x3", b, 28, 28, 128, 32, 3, 1), 12);
    add(w, makeConv2d("d121_t2", b, 28, 28, 512, 256, 1, 2), 1);
    add(w, makeConv2d("d121_b3_1x1", b, 14, 14, 640, 128, 1, 1), 24);
    add(w, makeConv2d("d121_b3_3x3", b, 14, 14, 128, 32, 3, 1), 24);
    add(w, makeConv2d("d121_t3", b, 14, 14, 1024, 512, 1, 2), 1);
    add(w, makeConv2d("d121_b4_1x1", b, 7, 7, 768, 128, 1, 1), 16);
    add(w, makeConv2d("d121_b4_3x3", b, 7, 7, 128, 32, 3, 1), 16);
    add(w, makeGemm("d121_fc", 1, b, 1000, 1024), 1);
    return w;
}

Workload
mobilenetV2(int batch)
{
    Workload w;
    w.name = "MbV2_b" + std::to_string(batch);
    const int64_t b = batch;
    add(w, makeConv2d("mb2_conv1", b, 224, 224, 3, 32, 3, 2), 1);
    add(w, makeDepthwiseConv2d("mb2_dw1", b, 112, 112, 32, 3, 1), 1);
    add(w, makeConv2d("mb2_pw1", b, 112, 112, 32, 16, 1, 1), 1);
    add(w, makeConv2d("mb2_exp2", b, 112, 112, 16, 96, 1, 1), 1);
    add(w, makeDepthwiseConv2d("mb2_dw2", b, 112, 112, 96, 3, 2), 1);
    add(w, makeConv2d("mb2_pw2", b, 56, 56, 96, 24, 1, 1), 2);
    add(w, makeConv2d("mb2_exp3", b, 56, 56, 24, 144, 1, 1), 2);
    add(w, makeDepthwiseConv2d("mb2_dw3", b, 56, 56, 144, 3, 2), 1);
    add(w, makeConv2d("mb2_pw3", b, 28, 28, 144, 32, 1, 1), 3);
    add(w, makeConv2d("mb2_exp4", b, 28, 28, 32, 192, 1, 1), 3);
    add(w, makeDepthwiseConv2d("mb2_dw4", b, 28, 28, 192, 3, 2), 1);
    add(w, makeConv2d("mb2_pw4", b, 14, 14, 192, 64, 1, 1), 4);
    add(w, makeConv2d("mb2_exp5", b, 14, 14, 64, 384, 1, 1), 4);
    add(w, makeDepthwiseConv2d("mb2_dw5", b, 14, 14, 384, 3, 1), 4);
    add(w, makeConv2d("mb2_pw5", b, 14, 14, 384, 96, 1, 1), 3);
    add(w, makeDepthwiseConv2d("mb2_dw6", b, 14, 14, 576, 3, 2), 1);
    add(w, makeConv2d("mb2_pw6", b, 7, 7, 576, 160, 1, 1), 3);
    add(w, makeConv2d("mb2_exp7", b, 7, 7, 160, 960, 1, 1), 3);
    add(w, makeConv2d("mb2_pw7", b, 7, 7, 960, 320, 1, 1), 1);
    add(w, makeConv2d("mb2_head", b, 7, 7, 320, 1280, 1, 1), 1);
    add(w, makeGemm("mb2_fc", 1, b, 1000, 1280), 1);
    return w;
}

Workload
dcgan(int batch)
{
    Workload w;
    w.name = "DCGAN_b" + std::to_string(batch);
    const int64_t b = batch;
    add(w, makeGemm("dcgan_fc", 1, b, 512ll * 4 * 4, 100), 1);
    add(w, makeConvTranspose2d("dcgan_ct1", b, 4, 4, 512, 256, 4, 2), 1);
    add(w, makeConvTranspose2d("dcgan_ct2", b, 8, 8, 256, 128, 4, 2), 1);
    add(w, makeConvTranspose2d("dcgan_ct3", b, 16, 16, 128, 64, 4, 2), 1);
    add(w, makeConvTranspose2d("dcgan_ct4", b, 32, 32, 64, 3, 4, 2), 1);
    add(w, makeElementwise("dcgan_tanh", b * 64 * 64 * 3, 4.0), 1);
    return w;
}

Workload
deeplabV3(int batch)
{
    Workload w;
    w.name = "Dv3R50_b" + std::to_string(batch);
    const int64_t b = batch;
    // ResNet-50 backbone at output stride 16 (stage 5 dilated, 28x28 kept).
    add(w, makeConv2d("dv3_conv1", b, 224, 224, 3, 64, 7, 2), 1);
    add(w, makeConv2d("dv3_s2_3x3", b, 56, 56, 64, 64, 3, 1), 3);
    add(w, makeConv2d("dv3_s2_1x1", b, 56, 56, 64, 256, 1, 1), 5);
    add(w, makeConv2d("dv3_s3_3x3", b, 28, 28, 128, 128, 3, 1), 4);
    add(w, makeConv2d("dv3_s3_1x1", b, 28, 28, 128, 512, 1, 1), 7);
    add(w, makeConv2d("dv3_s4_3x3", b, 28, 28, 256, 256, 3, 1), 6);
    add(w, makeConv2d("dv3_s4_1x1", b, 28, 28, 256, 1024, 1, 1), 11);
    add(w, makeConv2d("dv3_s5_3x3d", b, 28, 28, 512, 512, 3, 1), 3);
    add(w, makeConv2d("dv3_s5_1x1", b, 28, 28, 512, 2048, 1, 1), 5);
    // ASPP: parallel dilated 3x3 branches + 1x1 + projection.
    add(w, makeConv2d("dv3_aspp_3x3", b, 28, 28, 2048, 256, 3, 1), 3);
    add(w, makeConv2d("dv3_aspp_1x1", b, 28, 28, 2048, 256, 1, 1), 1);
    add(w, makeConv2d("dv3_proj", b, 28, 28, 1280, 256, 1, 1), 1);
    add(w, makeConv2d("dv3_cls", b, 28, 28, 256, 21, 1, 1), 1);
    add(w, makeElementwise("dv3_upsample", b * 224 * 224 * 21, 4.0), 1);
    return w;
}

Workload
resnet3d18(int batch)
{
    Workload w;
    w.name = "R3D18_b" + std::to_string(batch);
    const int64_t b = batch;
    // 3D convs over (T=16, 112x112) mapped to the implicit-GEMM loop nest;
    // the time dimension is folded into the spatial axis and the kernel
    // depth into the reduction axis.
    add(w, makeConv2d("r3d_conv1", b, 16 * 112, 112, 3 * 3, 64, 3, 2), 1);
    add(w, makeConv2d("r3d_s2", b, 16 * 56, 56, 64 * 3, 64, 3, 1), 4);
    add(w, makeConv2d("r3d_s3", b, 8 * 28, 28, 128 * 3, 128, 3, 1), 3);
    add(w, makeConv2d("r3d_s3d", b, 16 * 56, 56, 64 * 3, 128, 3, 2), 1);
    add(w, makeConv2d("r3d_s4", b, 4 * 14, 14, 256 * 3, 256, 3, 1), 3);
    add(w, makeConv2d("r3d_s4d", b, 8 * 28, 28, 128 * 3, 256, 3, 2), 1);
    add(w, makeConv2d("r3d_s5", b, 2 * 7, 7, 512 * 3, 512, 3, 1), 3);
    add(w, makeConv2d("r3d_s5d", b, 4 * 14, 14, 256 * 3, 512, 3, 2), 1);
    add(w, makeGemm("r3d_fc", 1, b, 400, 512), 1);
    return w;
}

Workload
vit(int batch, DType dtype)
{
    Workload w;
    w.name = std::string("ViT_b") + std::to_string(batch) + "_" +
             dtypeName(dtype);
    const int64_t b = batch;
    const int seq = 256 + 1; // 16x16 patches of a 256x256 image + cls token
    // Patch embedding as a GEMM over flattened 16x16x3 patches.
    add(w, makeGemm("vit_patch", 1, b * 256, 768, 16 * 16 * 3, dtype), 1);
    addTransformerStack(w, "vit", 12, 12, 768, 3072, batch, seq, dtype);
    add(w, makeGemm("vit_head", 1, b, 1000, 768, dtype), 1);
    return w;
}

Workload
detr(int batch)
{
    Workload w;
    w.name = "DeTR_b" + std::to_string(batch);
    const int64_t b = batch;
    // ResNet-50 backbone on a 256x256 image (reduced-resolution shapes).
    add(w, makeConv2d("detr_conv1", b, 256, 256, 3, 64, 7, 2), 1);
    add(w, makeConv2d("detr_s2_3x3", b, 64, 64, 64, 64, 3, 1), 3);
    add(w, makeConv2d("detr_s2_1x1", b, 64, 64, 64, 256, 1, 1), 5);
    add(w, makeConv2d("detr_s3_3x3", b, 32, 32, 128, 128, 3, 1), 4);
    add(w, makeConv2d("detr_s3_1x1", b, 32, 32, 128, 512, 1, 1), 7);
    add(w, makeConv2d("detr_s4_3x3", b, 16, 16, 256, 256, 3, 1), 6);
    add(w, makeConv2d("detr_s4_1x1", b, 16, 16, 256, 1024, 1, 1), 11);
    add(w, makeConv2d("detr_s5_3x3", b, 8, 8, 512, 512, 3, 1), 3);
    add(w, makeConv2d("detr_s5_1x1", b, 8, 8, 512, 2048, 1, 1), 5);
    add(w, makeConv2d("detr_input_proj", b, 8, 8, 2048, 256, 1, 1), 1);
    // Transformer: 6 encoder layers over 64 tokens, 6 decoder layers over
    // 64 memory + 100 query tokens (approximated as one 164-token stack).
    addTransformerStack(w, "detr_enc", 6, 8, 256, 2048, batch, 64,
                        DType::Fp32);
    addTransformerStack(w, "detr_dec", 6, 8, 256, 2048, batch, 164,
                        DType::Fp32);
    add(w, makeGemm("detr_class", 1, b * 100, 92, 256), 1);
    add(w, makeGemm("detr_bbox", 1, b * 100, 4, 256), 3);
    return w;
}

namespace {

Workload
transformerLm(const std::string& short_name, int layers, int heads,
              int hidden, int intermediate, int batch, int seq, DType dtype,
              int64_t vocab)
{
    Workload w;
    w.name = short_name + "_b" + std::to_string(batch) + "_s" +
             std::to_string(seq) + "_" + dtypeName(dtype);
    addTransformerStack(w, short_name, layers, heads, hidden, intermediate,
                        batch, seq, dtype);
    add(w,
        makeGemm(short_name + "_lmhead", 1,
                 static_cast<int64_t>(batch) * seq, vocab, hidden, dtype,
                 /*fused_tail=*/false),
        1);
    return w;
}

} // namespace

Workload
bertBase(int batch, int seq, DType dtype)
{
    return transformerLm("Bbase", 12, 12, 768, 3072, batch, seq, dtype,
                         30522);
}

Workload
bertTiny(int batch, int seq, DType dtype)
{
    return transformerLm("Btiny", 6, 8, 512, 2048, batch, seq, dtype, 30522);
}

Workload
bertLarge(int batch, int seq, DType dtype)
{
    return transformerLm("Blarge", 24, 16, 1024, 4096, batch, seq, dtype,
                         30522);
}

Workload
gpt2(int batch, int seq, DType dtype)
{
    return transformerLm("GPT2", 12, 12, 768, 3072, batch, seq, dtype, 50257);
}

Workload
llama(int batch, int seq, DType dtype)
{
    // Table 4's compact Llama variant (12 layers, hidden 768).
    return transformerLm("Llama", 12, 12, 768, 3072, batch, seq, dtype,
                         32000);
}

Workload
opt13b(int batch, int seq, DType dtype)
{
    return transformerLm("OPT", 24, 32, 2048, 8192, batch, seq, dtype, 50272);
}

Workload
mistral7b(int batch, int seq, DType dtype)
{
    return transformerLm("Mistral", 32, 32, 4096, 14336, batch, seq, dtype,
                         32000);
}

Workload
llamaDecode(int batch, int ctx, DType dtype)
{
    // Llama-7B-scale decode: hidden 4096, 32 heads, SwiGLU FFN 11008.
    Workload w;
    w.name = "LlamaDec_b" + std::to_string(batch) + "_c" +
             std::to_string(ctx) + "_" + dtypeName(dtype);
    const int hidden = 4096;
    const int heads = 32;
    const int head_dim = hidden / heads;
    const int inter = 11008;
    const int layers = 32;
    const int64_t b = batch; // one new token per sequence
    add(w, makeGemm("ldec_proj_qkvo", 1, b, hidden, hidden, dtype,
                    /*fused_tail=*/false),
        4 * layers);
    add(w, makeGemm("ldec_proj_gateup", 1, b, inter, hidden, dtype,
                    /*fused_tail=*/false),
        2 * layers);
    add(w, makeGemm("ldec_proj_down", 1, b, hidden, inter, dtype,
                    /*fused_tail=*/false),
        layers);
    // Attention against the KV cache: per (batch*head), 1 x ctx x head_dim.
    add(w, makeGemm("ldec_qkt", b * heads, 1, ctx, head_dim, dtype,
                    /*fused_tail=*/false),
        layers);
    add(w, makeReductionOp("ldec_softmax", b * heads, ctx, dtype), layers);
    add(w, makeGemm("ldec_attnv", b * heads, 1, head_dim, ctx, dtype,
                    /*fused_tail=*/false),
        layers);
    add(w, makeElementwise("ldec_lnres", b * hidden, 8.0, dtype), 2 * layers);
    add(w, makeGemm("ldec_lmhead", 1, b, 32000, hidden, dtype,
                    /*fused_tail=*/false),
        1);
    return w;
}

std::vector<SubgraphTask>
singleOpSuite()
{
    std::vector<SubgraphTask> ops;
    ops.push_back(makeGemm("M-1", 1, 1024, 1024, 1024));
    ops.push_back(makeGemm("M-2", 1, 64, 64, 16384)); // splitK-friendly
    ops.push_back(makeGemm("M-3", 1, 4096, 4096, 512));
    ops.push_back(makeConv2d("C1-1", 1, 56, 56, 64, 64, 3, 1));
    ops.push_back(makeConv2d("C1-2", 1, 28, 28, 128, 128, 3, 1));
    ops.push_back(makeConv2d("C1-3", 1, 14, 14, 256, 256, 3, 1));
    ops.push_back(makeConv2d("C1-4", 1, 112, 112, 64, 128, 1, 1));
    ops.push_back(makeConv2d("C2-1", 1, 112, 112, 64, 128, 3, 2));
    ops.push_back(makeConv2d("C2-2", 1, 56, 56, 128, 256, 3, 2));
    ops.push_back(makeConv2d("C2-3", 1, 28, 28, 256, 512, 3, 2));
    ops.push_back(makeConv2d("C2-4", 1, 224, 224, 3, 64, 7, 2));
    return ops;
}

Workload
byName(const std::string& name)
{
    if (name == "R50") {
        return resnet50();
    }
    if (name == "WR-50") {
        return wideResnet50();
    }
    if (name == "I-V3") {
        return inceptionV3();
    }
    if (name == "D-121") {
        return densenet121();
    }
    if (name == "Mb-V2") {
        return mobilenetV2();
    }
    if (name == "DCGAN") {
        return dcgan();
    }
    if (name == "Dv3-R50") {
        return deeplabV3();
    }
    if (name == "R3d18") {
        return resnet3d18();
    }
    if (name == "ViT") {
        return vit();
    }
    if (name == "DeTR") {
        return detr();
    }
    if (name == "B-base") {
        return bertBase();
    }
    if (name == "B-tiny") {
        return bertTiny();
    }
    if (name == "B-large") {
        return bertLarge();
    }
    if (name == "GPT-2") {
        return gpt2();
    }
    if (name == "Llama") {
        return llama();
    }
    if (name == "OPT") {
        return opt13b();
    }
    if (name == "Mistral") {
        return mistral7b();
    }
    PRUNER_FATAL("unknown workload name: " << name);
}

std::vector<std::string>
allNames()
{
    return {"R50",   "WR-50",  "I-V3", "D-121", "Mb-V2", "DCGAN",
            "Dv3-R50", "R3d18", "ViT",  "DeTR",  "B-base", "B-tiny",
            "B-large", "GPT-2", "Llama", "OPT",  "Mistral"};
}

} // namespace workloads
} // namespace pruner
