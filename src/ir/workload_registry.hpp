#pragma once

/**
 * @file workload_registry.hpp
 * Registry of the DNN workloads evaluated in the paper (Tables 3 and 4).
 *
 * Each workload is a set of fused subgraph tasks with occurrence weights
 * (how many times the subgraph appears in the network), mirroring how
 * Ansor's graph partitioner deduplicates repeated layers. End-to-end
 * latency is the weight-sum of per-task latencies.
 */

#include <string>
#include <vector>

#include "ir/task.hpp"

namespace pruner {

/** A subgraph together with its occurrence count in the network. */
struct TaskInstance
{
    SubgraphTask task;
    double weight = 1.0;
};

/** A DNN workload: named set of weighted subgraph tasks. */
struct Workload
{
    std::string name;
    std::vector<TaskInstance> tasks;

    /** Weighted end-to-end latency; `per_task` holds one latency per task
     *  in the same order as `tasks`. */
    double endToEndLatency(const std::vector<double>& per_task) const;

    /** Sum of task weights. */
    double totalWeight() const;

    size_t size() const { return tasks.size(); }
};

namespace workloads {

// --- CNNs (Table 3), batch-1 FP32 unless noted ---
Workload resnet50(int batch = 1);
Workload wideResnet50(int batch = 1);
Workload inceptionV3(int batch = 1);
Workload densenet121(int batch = 1);
Workload mobilenetV2(int batch = 1);
Workload dcgan(int batch = 1);
Workload deeplabV3(int batch = 1);
Workload resnet3d18(int batch = 1); ///< TenSet test-set model

// --- Transformers (Tables 3/4) ---
Workload vit(int batch = 1, DType dtype = DType::Fp32);
Workload detr(int batch = 1);
Workload bertBase(int batch = 1, int seq = 128, DType dtype = DType::Fp32);
Workload bertTiny(int batch = 1, int seq = 128, DType dtype = DType::Fp32);
Workload bertLarge(int batch = 1, int seq = 128, DType dtype = DType::Fp32);
Workload gpt2(int batch = 1, int seq = 128, DType dtype = DType::Fp32);
Workload llama(int batch = 1, int seq = 128, DType dtype = DType::Fp32);
Workload opt13b(int batch = 1, int seq = 128, DType dtype = DType::Fp16Tc);
Workload mistral7b(int batch = 1, int seq = 128,
                   DType dtype = DType::Fp16Tc);

/** Llama-7B-scale decode phase: one token per sequence against a KV cache
 *  of length `ctx` (Figures 10 and 13). */
Workload llamaDecode(int batch = 32, int ctx = 1024,
                     DType dtype = DType::Fp32);

/** Single-operator suite of Figure 11: M-1..3 matmuls, C1-1..4 stride-1
 *  convolutions, C2-1..4 stride-2 convolutions. */
std::vector<SubgraphTask> singleOpSuite();

/** Look up a workload by the paper's short name (e.g. "R50", "B-base",
 *  "Mb-V2"); uses the paper's default shapes. Throws FatalError if
 *  unknown. */
Workload byName(const std::string& name);

/** Short names of all registered workloads. */
std::vector<std::string> allNames();

} // namespace workloads
} // namespace pruner
