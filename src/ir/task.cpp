#include "ir/task.hpp"

#include <sstream>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace pruner {

const char*
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::Gemm:
        return "gemm";
      case OpClass::Conv2d:
        return "conv2d";
      case OpClass::DepthwiseConv2d:
        return "dwconv2d";
      case OpClass::ConvTranspose2d:
        return "convtranspose2d";
      case OpClass::Elementwise:
        return "elementwise";
      case OpClass::Reduction:
        return "reduction";
    }
    return "unknown";
}

const char*
dtypeName(DType d)
{
    switch (d) {
      case DType::Fp32:
        return "fp32";
      case DType::Fp16Tc:
        return "fp16tc";
    }
    return "unknown";
}

int
dtypeBytes(DType d)
{
    return d == DType::Fp16Tc ? 2 : 4;
}

int64_t
TensorAccess::numElements(const SubgraphTask& task) const
{
    int64_t n = 1;
    for (int a : spatial_axes) {
        PRUNER_CHECK(a >= 0 && a < static_cast<int>(task.spatial.size()));
        n *= task.spatial[a].extent;
    }
    for (int a : reduction_axes) {
        PRUNER_CHECK(a >= 0 && a < static_cast<int>(task.reduction.size()));
        n *= task.reduction[a].extent;
    }
    return n;
}

int64_t
SubgraphTask::outputPoints() const
{
    int64_t n = 1;
    for (const auto& axis : spatial) {
        n *= axis.extent;
    }
    return n;
}

int64_t
SubgraphTask::reductionSize() const
{
    int64_t n = 1;
    for (const auto& axis : reduction) {
        n *= axis.extent;
    }
    return n;
}

double
SubgraphTask::totalFlops() const
{
    return flops_per_point * static_cast<double>(outputPoints()) *
               static_cast<double>(reductionSize()) +
           tail_flops_per_output * static_cast<double>(outputPoints());
}

double
SubgraphTask::uniqueBytes() const
{
    double bytes = 0.0;
    for (const auto& t : tensors) {
        bytes += static_cast<double>(t.numElements(*this)) *
                 t.footprint_scale * dtypeBytes(dtype);
    }
    return bytes;
}

double
SubgraphTask::arithmeticIntensity() const
{
    const double bytes = uniqueBytes();
    return bytes > 0.0 ? totalFlops() / bytes : 0.0;
}

uint64_t
SubgraphTask::hash() const
{
    uint64_t h = splitmix64(static_cast<uint64_t>(op_class) * 31 +
                            static_cast<uint64_t>(dtype));
    for (char c : key) {
        h = hashCombine(h, static_cast<uint64_t>(c));
    }
    for (const auto& axis : spatial) {
        h = hashCombine(h, static_cast<uint64_t>(axis.extent));
    }
    for (const auto& axis : reduction) {
        h = hashCombine(h, static_cast<uint64_t>(axis.extent) | (1ull << 40));
    }
    return h;
}

std::string
SubgraphTask::toString() const
{
    std::ostringstream oss;
    oss << key << " [" << opClassName(op_class) << "/" << dtypeName(dtype)
        << "] spatial(";
    for (size_t i = 0; i < spatial.size(); ++i) {
        oss << (i ? "," : "") << spatial[i].name << "=" << spatial[i].extent;
    }
    oss << ") reduction(";
    for (size_t i = 0; i < reduction.size(); ++i) {
        oss << (i ? "," : "") << reduction[i].name << "="
            << reduction[i].extent;
    }
    oss << ") flops=" << totalFlops();
    return oss.str();
}

int
SubgraphTask::outputTensorIndex() const
{
    int found = -1;
    for (size_t i = 0; i < tensors.size(); ++i) {
        if (tensors[i].is_output) {
            PRUNER_CHECK_MSG(found < 0, "multiple output tensors");
            found = static_cast<int>(i);
        }
    }
    PRUNER_CHECK_MSG(found >= 0, "task has no output tensor");
    return found;
}

SubgraphTask
makeGemm(const std::string& name, int64_t batch, int64_t m, int64_t n,
         int64_t k, DType dtype, bool fused_tail)
{
    PRUNER_CHECK(batch >= 1 && m >= 1 && n >= 1 && k >= 1);
    SubgraphTask t;
    std::ostringstream key;
    key << name << "_b" << batch << "_m" << m << "_n" << n << "_k" << k << "_"
        << dtypeName(dtype);
    t.key = key.str();
    t.op_class = OpClass::Gemm;
    t.dtype = dtype;
    t.spatial = {{"i", batch * m}, {"j", n}};
    t.reduction = {{"k", k}};
    // A[i, k]: contiguous along k.
    TensorAccess a;
    a.name = "A";
    a.spatial_axes = {0};
    a.reduction_axes = {0};
    a.contiguous_reduction = 0;
    t.tensors.push_back(a);
    // B[k, j]: contiguous along j.
    TensorAccess b;
    b.name = "B";
    b.spatial_axes = {1};
    b.reduction_axes = {0};
    b.contiguous_spatial = 1;
    t.tensors.push_back(b);
    // C[i, j]: contiguous along j.
    TensorAccess c;
    c.name = "C";
    c.spatial_axes = {0, 1};
    c.contiguous_spatial = 1;
    c.is_output = true;
    t.tensors.push_back(c);
    t.flops_per_point = 2.0;
    t.has_elementwise_tail = fused_tail;
    t.tail_flops_per_output = fused_tail ? 2.0 : 0.0;
    return t;
}

SubgraphTask
makeConv2d(const std::string& name, int64_t n, int64_t h, int64_t w,
           int64_t ci, int64_t co, int kernel, int stride, DType dtype,
           bool fused_tail)
{
    PRUNER_CHECK(n >= 1 && h >= 1 && w >= 1 && ci >= 1 && co >= 1);
    PRUNER_CHECK(kernel >= 1 && stride >= 1);
    const int64_t oh = (h + stride - 1) / stride;
    const int64_t ow = (w + stride - 1) / stride;
    SubgraphTask t;
    std::ostringstream key;
    key << name << "_n" << n << "_hw" << h << "x" << w << "_ci" << ci << "_co"
        << co << "_k" << kernel << "_s" << stride << "_" << dtypeName(dtype);
    t.key = key.str();
    t.op_class = OpClass::Conv2d;
    t.dtype = dtype;
    // Implicit GEMM: i = N*OH*OW, j = CO, k = CI*KH*KW.
    t.spatial = {{"i", n * oh * ow}, {"j", co}};
    t.reduction = {{"k", ci * kernel * kernel}};
    // Input image: touched by (i, k); the unique footprint is N*H*W*CI which
    // is smaller than i*k by the halo-reuse factor.
    TensorAccess img;
    img.name = "X";
    img.spatial_axes = {0};
    img.reduction_axes = {0};
    img.contiguous_reduction = 0; // NHWC: channels innermost
    const double naive = static_cast<double>(n * oh * ow) *
                         static_cast<double>(ci * kernel * kernel);
    const double unique = static_cast<double>(n * h * w * ci);
    img.footprint_scale = unique / naive;
    t.tensors.push_back(img);
    // Weights: touched by (j, k).
    TensorAccess wgt;
    wgt.name = "W";
    wgt.spatial_axes = {1};
    wgt.reduction_axes = {0};
    wgt.contiguous_reduction = 0;
    t.tensors.push_back(wgt);
    // Output: (i, j), channels innermost.
    TensorAccess out;
    out.name = "Y";
    out.spatial_axes = {0, 1};
    out.contiguous_spatial = 1;
    out.is_output = true;
    t.tensors.push_back(out);
    t.flops_per_point = 2.0;
    t.has_elementwise_tail = fused_tail;
    t.tail_flops_per_output = fused_tail ? 3.0 : 0.0; // bias + relu
    t.conv_stride = stride;
    t.conv_kernel = kernel;
    return t;
}

SubgraphTask
makeDepthwiseConv2d(const std::string& name, int64_t n, int64_t h, int64_t w,
                    int64_t c, int kernel, int stride, DType dtype)
{
    PRUNER_CHECK(n >= 1 && h >= 1 && w >= 1 && c >= 1);
    const int64_t oh = (h + stride - 1) / stride;
    const int64_t ow = (w + stride - 1) / stride;
    SubgraphTask t;
    std::ostringstream key;
    key << name << "_n" << n << "_hw" << h << "x" << w << "_c" << c << "_k"
        << kernel << "_s" << stride << "_" << dtypeName(dtype);
    t.key = key.str();
    t.op_class = OpClass::DepthwiseConv2d;
    t.dtype = dtype;
    t.spatial = {{"i", n * oh * ow}, {"j", c}};
    t.reduction = {{"k", static_cast<int64_t>(kernel) * kernel}};
    TensorAccess img;
    img.name = "X";
    img.spatial_axes = {0, 1};
    img.reduction_axes = {0};
    img.contiguous_spatial = 1;
    const double naive = static_cast<double>(n * oh * ow * c) *
                         static_cast<double>(kernel) * kernel;
    img.footprint_scale = static_cast<double>(n * h * w * c) / naive;
    t.tensors.push_back(img);
    TensorAccess wgt;
    wgt.name = "W";
    wgt.spatial_axes = {1};
    wgt.reduction_axes = {0};
    wgt.contiguous_reduction = 0;
    t.tensors.push_back(wgt);
    TensorAccess out;
    out.name = "Y";
    out.spatial_axes = {0, 1};
    out.contiguous_spatial = 1;
    out.is_output = true;
    t.tensors.push_back(out);
    t.flops_per_point = 2.0;
    t.has_elementwise_tail = true;
    t.tail_flops_per_output = 3.0;
    t.conv_stride = stride;
    t.conv_kernel = kernel;
    return t;
}

SubgraphTask
makeConvTranspose2d(const std::string& name, int64_t n, int64_t h, int64_t w,
                    int64_t ci, int64_t co, int kernel, int stride,
                    DType dtype)
{
    // Transposed conv upsamples: output spatial = input spatial * stride.
    SubgraphTask t =
        makeConv2d(name, n, h * stride, w * stride, ci, co, kernel, 1, dtype);
    t.op_class = OpClass::ConvTranspose2d;
    t.conv_stride = stride;
    std::ostringstream key;
    key << name << "_n" << n << "_hw" << h << "x" << w << "_ci" << ci << "_co"
        << co << "_k" << kernel << "_s" << stride << "_ct_"
        << dtypeName(dtype);
    t.key = key.str();
    return t;
}

SubgraphTask
makeElementwise(const std::string& name, int64_t elems, double flops_per_elem,
                DType dtype)
{
    PRUNER_CHECK(elems >= 1);
    SubgraphTask t;
    std::ostringstream key;
    key << name << "_e" << elems << "_" << dtypeName(dtype);
    t.key = key.str();
    t.op_class = OpClass::Elementwise;
    t.dtype = dtype;
    t.spatial = {{"i", elems}};
    TensorAccess in;
    in.name = "X";
    in.spatial_axes = {0};
    in.contiguous_spatial = 0;
    t.tensors.push_back(in);
    TensorAccess out;
    out.name = "Y";
    out.spatial_axes = {0};
    out.contiguous_spatial = 0;
    out.is_output = true;
    t.tensors.push_back(out);
    t.flops_per_point = flops_per_elem;
    return t;
}

SubgraphTask
makeReductionOp(const std::string& name, int64_t rows, int64_t cols,
                DType dtype)
{
    PRUNER_CHECK(rows >= 1 && cols >= 1);
    SubgraphTask t;
    std::ostringstream key;
    key << name << "_r" << rows << "_c" << cols << "_" << dtypeName(dtype);
    t.key = key.str();
    t.op_class = OpClass::Reduction;
    t.dtype = dtype;
    t.spatial = {{"i", rows}};
    t.reduction = {{"k", cols}};
    TensorAccess in;
    in.name = "X";
    in.spatial_axes = {0};
    in.reduction_axes = {0};
    in.contiguous_reduction = 0;
    t.tensors.push_back(in);
    TensorAccess out;
    out.name = "Y";
    out.spatial_axes = {0};
    out.contiguous_spatial = 0;
    out.is_output = true;
    t.tensors.push_back(out);
    t.flops_per_point = 2.0;
    return t;
}

} // namespace pruner
