#pragma once

/**
 * @file task.hpp
 * Tensor-workload IR: a subgraph expressed as a tiled loop nest.
 *
 * The paper partitions a DNN into fused subgraphs (Ansor-style) and tunes
 * each one. After Ansor's multi-level tiling sketch is applied, every
 * subgraph we care about is a perfectly nested loop over some spatial axes
 * and some reduction axes, with each tensor operand touching a subset of
 * those axes (implicit-GEMM view of convolutions). That is exactly the
 * structure the paper's Figure 3 extracts hardware-aware symbols from, so
 * our IR encodes it directly: a SubgraphTask is a set of axes plus per-
 * tensor axis-participation lists and a handful of operator attributes.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace pruner {

/** Operator families that need distinct vendor-library / simulator
 *  behaviour. */
enum class OpClass : int {
    Gemm = 0,            ///< matmul / batched matmul / attention matmuls
    Conv2d = 1,          ///< direct or implicit-GEMM convolution
    DepthwiseConv2d = 2,
    ConvTranspose2d = 3,
    Elementwise = 4,     ///< fused pointwise chains, no reduction
    Reduction = 5,       ///< softmax / pooling style: spatial + reduction
};

/** Numeric precision of the task. Fp16Tc enables the TensorCore path. */
enum class DType : int {
    Fp32 = 0,
    Fp16Tc = 1,
};

const char* opClassName(OpClass c);
const char* dtypeName(DType d);

/** Bytes per element for a dtype. */
int dtypeBytes(DType d);

/** One iteration axis of the loop nest. */
struct Axis
{
    std::string name;
    int64_t extent = 1;
};

/**
 * One tensor operand and how the loop nest walks it.
 *
 * Axis references are indices into SubgraphTask::spatial /
 * SubgraphTask::reduction. `contiguous_spatial`/`contiguous_reduction`
 * identify which axis is innermost in the tensor's memory layout; the
 * simulator derives global-memory coalescing behaviour from it.
 */
struct TensorAccess
{
    std::string name;
    std::vector<int> spatial_axes;
    std::vector<int> reduction_axes;
    /** Axis index (into spatial) that is contiguous in memory, or -1. */
    int contiguous_spatial = -1;
    /** Axis index (into reduction) that is contiguous in memory, or -1. */
    int contiguous_reduction = -1;
    /** Unique-footprint inflation (conv halo) or deflation (stride reuse)
     *  relative to the naive product of participating extents. */
    double footprint_scale = 1.0;
    bool is_output = false;

    /** Product of the extents of all participating axes of @p task. */
    int64_t numElements(const struct SubgraphTask& task) const;
};

/** A fused subgraph expressed as a tiled loop nest. */
struct SubgraphTask
{
    std::string key;       ///< unique identifier, e.g. "gemm_b1_m128..."
    OpClass op_class = OpClass::Gemm;
    DType dtype = DType::Fp32;
    std::vector<Axis> spatial;
    std::vector<Axis> reduction;
    std::vector<TensorAccess> tensors;

    /** FLOPs per innermost iteration point (2 for FMA-based ops). */
    double flops_per_point = 2.0;
    /** Extra fused-epilogue FLOPs per output element (ReLU, bias...). */
    double tail_flops_per_output = 0.0;
    /** True if an elementwise epilogue is fused after the reduction. */
    bool has_elementwise_tail = false;

    // Operator attributes used by vendor-library models and baselines.
    int conv_stride = 1;
    int conv_kernel = 1;

    /** Product of spatial extents (number of output points). */
    int64_t outputPoints() const;

    /** Product of reduction extents (1 if there is no reduction). */
    int64_t reductionSize() const;

    /** Total FLOPs of the task (loop body + fused tail). */
    double totalFlops() const;

    /** Total bytes touched once (sum of unique tensor footprints). */
    double uniqueBytes() const;

    /** Arithmetic intensity (FLOPs / unique byte). */
    double arithmeticIntensity() const;

    /** Stable content hash (used for dataset keys and simulator noise). */
    uint64_t hash() const;

    /** One-line human-readable description. */
    std::string toString() const;

    /** Index of the output tensor in `tensors`. Requires exactly one. */
    int outputTensorIndex() const;
};

/** Factory: (batched) GEMM C[b,m,n] += A[b,m,k] * B[k,n], with the batch
 *  folded into the first spatial axis. `fused_tail` adds a ReLU-style
 *  epilogue. */
SubgraphTask makeGemm(const std::string& name, int64_t batch, int64_t m,
                      int64_t n, int64_t k, DType dtype = DType::Fp32,
                      bool fused_tail = true);

/** Factory: conv2d in implicit-GEMM form (NHWC, OIHW weights). */
SubgraphTask makeConv2d(const std::string& name, int64_t n, int64_t h,
                        int64_t w, int64_t ci, int64_t co, int kernel,
                        int stride, DType dtype = DType::Fp32,
                        bool fused_tail = true);

/** Factory: depthwise conv2d. */
SubgraphTask makeDepthwiseConv2d(const std::string& name, int64_t n,
                                 int64_t h, int64_t w, int64_t c, int kernel,
                                 int stride, DType dtype = DType::Fp32);

/** Factory: transposed conv2d (DCGAN-style upsampling). */
SubgraphTask makeConvTranspose2d(const std::string& name, int64_t n,
                                 int64_t h, int64_t w, int64_t ci, int64_t co,
                                 int kernel, int stride,
                                 DType dtype = DType::Fp32);

/** Factory: fused elementwise chain over `elems` elements. */
SubgraphTask makeElementwise(const std::string& name, int64_t elems,
                             double flops_per_elem = 4.0,
                             DType dtype = DType::Fp32);

/** Factory: reduction op (softmax / pooling): `rows` x reduce(`cols`). */
SubgraphTask makeReductionOp(const std::string& name, int64_t rows,
                             int64_t cols, DType dtype = DType::Fp32);

} // namespace pruner
