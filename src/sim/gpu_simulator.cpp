#include "sim/gpu_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/symbols.hpp"
#include "support/logging.hpp"

namespace pruner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Deterministic hash -> [-1, 1], used for platform quirks. */
double
centeredHash(uint64_t seed, uint64_t tag, uint64_t value)
{
    const uint64_t h = splitmix64(hashCombine(hashCombine(seed, tag), value));
    return (static_cast<double>(h >> 11) * 0x1.0p-53) * 2.0 - 1.0;
}

/** log2 bin of a positive integer (0 for 1). */
uint64_t
log2Bin(int64_t v)
{
    uint64_t bin = 0;
    while (v > 1) {
        v >>= 1;
        ++bin;
    }
    return bin;
}

} // namespace

GpuSimulator::GpuSimulator(const DeviceSpec& device) : device_(device) {}

double
GpuSimulator::trueLatency(const SubgraphTask& task, const Schedule& sch) const
{
    return trueLatency(task, sch, nullptr);
}

double
GpuSimulator::trueLatency(const SubgraphTask& task, const Schedule& sch,
                          SimBreakdown* breakdown) const
{
    const auto& dev = device_;
    SimBreakdown local;
    SimBreakdown& bd = breakdown ? *breakdown : local;

    if (!sch.valid(task, dev.max_threads_per_block)) {
        bd.launch_failed = true;
        return kInf;
    }

    const SymbolSet sym = extractSymbols(task, sch);
    const double bytes_per_elem = dtypeBytes(task.dtype);
    const int64_t threads = sch.threadsPerBlock();
    const int64_t blocks = sch.numBlocks();

    // ---- Resource usage and launch limits -------------------------------
    const double smem_bytes = sym.s3_l1_alloc * bytes_per_elem;
    if (smem_bytes > static_cast<double>(dev.smem_per_block_floats) * 4.0) {
        bd.launch_failed = true;
        return kInf; // launch failure: over the shared-memory budget
    }
    // Register estimate: accumulators + operand tiles + bookkeeping. The
    // compiler always fits the kernel by spilling to local memory, so
    // register pressure degrades speed instead of failing the launch.
    const double regs_needed = sym.s1_l0_alloc + 24.0;
    const double reg_limit = std::min(
        static_cast<double>(dev.regs_per_thread),
        std::max(static_cast<double>(dev.regs_per_sm) /
                     static_cast<double>(threads),
                 16.0));
    double spill = 1.0;
    if (regs_needed > reg_limit) {
        spill = 1.0 + 0.8 * (regs_needed / reg_limit - 1.0);
    }
    bd.spill_factor = spill;
    const double regs_used = std::min(regs_needed, reg_limit);

    // ---- Occupancy -------------------------------------------------------
    const double warps_per_block =
        std::ceil(static_cast<double>(threads) / dev.warp_size);
    double bpsm = static_cast<double>(dev.max_blocks_per_sm);
    bpsm = std::min(bpsm, std::floor(static_cast<double>(
                              dev.max_threads_per_sm) /
                          static_cast<double>(threads)));
    if (smem_bytes > 0.0) {
        bpsm = std::min(
            bpsm, std::floor(static_cast<double>(dev.smem_per_sm_floats) *
                             4.0 / smem_bytes));
    }
    bpsm = std::min(bpsm, std::floor(static_cast<double>(dev.regs_per_sm) /
                                     (static_cast<double>(threads) *
                                      regs_used)));
    bpsm = std::max(bpsm, 1.0); // spilling always fits one block
    const double max_warps_per_sm =
        static_cast<double>(dev.max_threads_per_sm) / dev.warp_size;
    const double active_warps =
        std::min(bpsm * warps_per_block, max_warps_per_sm);
    const double occupancy = active_warps / max_warps_per_sm;
    bd.occupancy = occupancy;

    // ---- Wave structure --------------------------------------------------
    const double concurrent_blocks = bpsm * dev.num_sms;
    const double waves =
        std::ceil(static_cast<double>(blocks) / concurrent_blocks);
    bd.waves = waves;
    // Throughput parallelism is quantized at SM granularity: extra resident
    // blocks per SM improve latency hiding (occupancy) but do not raise the
    // per-SM peak.
    const double sms = static_cast<double>(dev.num_sms);
    const double parallel_eff =
        static_cast<double>(blocks) /
        (std::ceil(static_cast<double>(blocks) / sms) * sms);

    // ---- Compute throughput ----------------------------------------------
    double peak = dev.peak_flops;
    double issue_cost = 0.35; // shared-load issue cost relative to FMA
    if (task.dtype == DType::Fp16Tc) {
        if (dev.has_tensorcore) {
            // WMMA tiles need 16-aligned block tiles; misalignment falls
            // back to partially packed fragments.
            peak = dev.tc_peak_flops * (0.25 + 0.75 * sym.tc_alignment);
            issue_cost = 0.10; // fragments amortize shared loads
        } else {
            peak = dev.peak_flops * 2.0; // packed half2 math
        }
    }

    // Inner-loop issue balance: FMAs per shared-memory operand fetched.
    const double out_reg_tile = static_cast<double>(sch.regTilePoints());
    const double operand_regs =
        std::max(sym.s1_l0_alloc - out_reg_tile, 1.0);
    const double issue_ratio = out_reg_tile / operand_regs;
    const double issue_eff = issue_ratio / (issue_ratio + issue_cost);

    // Unroll / vthread instruction-level parallelism.
    const double u = static_cast<double>(sch.unroll());
    double unroll_eff = 1.0 - 0.18 * std::exp(-u / 24.0);
    if (u >= 512.0 && sym.s2_l0_comp < 4096.0) {
        unroll_eff *= 0.96; // instruction-cache pressure on tiny bodies
    }
    const double ilp = 1.0 +
                       0.1 * std::min<double>(sch.numVThreads(), 8.0);

    // Latency hiding for the ALU pipeline: need enough resident warps.
    // Bounded below — even one resident warp per scheduler keeps the
    // pipeline partially fed.
    const double lat_hide =
        std::clamp((occupancy * ilp) / 0.25, 0.45, 1.0);

    // Warp-granularity and scheduler quantization (as in the penalties).
    const double alpha_warp =
        sym.s4_threads / (warps_per_block * dev.warp_size);
    const double sched_eff =
        warps_per_block /
        (std::ceil(warps_per_block / dev.warp_schedulers) *
         dev.warp_schedulers);
    // Shallow blocks still fill the SM if several blocks are resident.
    const double sched_eff_adj =
        1.0 - (1.0 - sched_eff) / std::sqrt(std::min(bpsm, 8.0));

    double compute_eff = parallel_eff * alpha_warp * sched_eff_adj *
                         issue_eff * unroll_eff * lat_hide;
    compute_eff = std::max(compute_eff, 1e-4);
    const double compute_s =
        sym.totalFlops() * spill / (peak * compute_eff);
    bd.compute_s = compute_s;

    // ---- Memory traffic ---------------------------------------------------
    // Working set for the L2 model.
    double working_bytes = 0.0;
    for (const auto& tensor : task.tensors) {
        working_bytes += static_cast<double>(tensor.numElements(task)) *
                         tensor.footprint_scale * bytes_per_elem;
    }
    const double p_hit = std::clamp(
        static_cast<double>(dev.l2_cache_bytes) /
            std::max(working_bytes * 1.5, 1.0),
        0.0, 0.95);

    const double vec_eff =
        0.8 + 0.2 * std::min(sch.vectorLen(), 4) / 4.0;
    double mem_time = 0.0;
    double dram_total = 0.0, l2_total = 0.0;
    double bank_conflict = 1.0;
    const double conflict_strength =
        0.12 + 0.18 * std::abs(centeredHash(dev.fingerprint, 0xBC, 1));

    for (const auto& stmt : sym.statements) {
        if (stmt.s5_traffic <= 0.0) {
            continue;
        }
        const auto& tensor = task.tensors[stmt.tensor];
        // Shared-memory staging recovers part of the implicit-GEMM halo
        // redundancy for convolutions (footprint_scale < 1).
        const double halo_recovery =
            std::clamp(tensor.footprint_scale * 3.0,
                       tensor.footprint_scale, 1.0);
        const double traffic_bytes =
            stmt.s5_traffic * bytes_per_elem * halo_recovery;
        const double unique_bytes =
            static_cast<double>(tensor.numElements(task)) *
            tensor.footprint_scale * bytes_per_elem;

        double dram_bytes, l2_bytes;
        if (stmt.kind == StatementSymbols::Kind::OutputStore) {
            dram_bytes = traffic_bytes; // streaming store
            l2_bytes = 0.0;
        } else {
            const double reload = std::max(traffic_bytes - unique_bytes,
                                           0.0);
            dram_bytes = std::min(unique_bytes, traffic_bytes) +
                         (1.0 - p_hit) * reload;
            l2_bytes = p_hit * reload;
        }

        // Coalescing from the innermost contiguous run length.
        const double s7 = std::max(stmt.s7_trans_dim, 1.0);
        double coal = s7 / (std::ceil(s7 / dev.mem_transaction_floats) *
                            dev.mem_transaction_floats);
        coal = std::max(coal, 1.0 / dev.mem_transaction_floats);
        if (task.conv_stride > 1 &&
            stmt.kind == StatementSymbols::Kind::SharedLoad &&
            tensor.footprint_scale < 1.0) {
            coal /= std::sqrt(static_cast<double>(task.conv_stride));
        }

        // Shared-memory bank conflicts: power-of-two row lengths that are
        // multiples of the bank count serialize column accesses unless the
        // compiler pads (platform-dependent).
        if (stmt.kind == StatementSymbols::Kind::SharedLoad) {
            const int64_t row = static_cast<int64_t>(s7);
            if (row >= 32 && row % 32 == 0) {
                bank_conflict += conflict_strength;
            }
        }

        mem_time += dram_bytes /
                        (dev.peak_bandwidth * coal * vec_eff) +
                    l2_bytes / (dev.peak_bandwidth *
                                dev.l2_hit_bandwidth_scale * vec_eff);
        dram_total += dram_bytes;
        l2_total += l2_bytes;
    }
    bd.dram_bytes = dram_total;
    bd.l2_bytes = l2_total;
    bd.bank_conflict = bank_conflict;

    // DRAM saturation needs enough in-flight warps.
    const double mem_sat =
        std::min(1.0, std::pow(occupancy / 0.40, 0.7));
    mem_time /= std::max(mem_sat, 0.05);
    // Also the whole grid must span enough SMs to use all channels.
    const double sm_span = std::min(
        1.0, static_cast<double>(blocks) / (0.5 * dev.num_sms));
    mem_time /= std::max(sm_span, 0.05);
    bd.memory_s = mem_time;

    // ---- Combine ----------------------------------------------------------
    const double compute_total = compute_s * bank_conflict;
    const double overlap = 0.25 + 0.45 * occupancy;
    double total = std::max(compute_total, mem_time) +
                   (1.0 - overlap) * std::min(compute_total, mem_time);
    total += dev.launch_overhead_s + waves * 2e-7 +
             static_cast<double>(blocks) * 1e-9;

    // ---- Structured platform quirks ---------------------------------------
    // Coarse schedule features get a per-platform +/- few % factor. This is
    // deterministic and *learnable* (a cost model trained on this platform
    // can pick it up) but differs across platforms — the cross-platform
    // domain gap.
    const uint64_t tkey = task.hash();
    double quirk = 1.0;
    quirk *= 1.0 + 0.04 * centeredHash(dev.fingerprint, 0x01,
                                       log2Bin(threads));
    quirk *= 1.0 + 0.03 * centeredHash(dev.fingerprint, 0x02,
                                       static_cast<uint64_t>(sch.unroll()));
    quirk *= 1.0 + 0.03 * centeredHash(dev.fingerprint, 0x03,
                                       static_cast<uint64_t>(
                                           sch.vectorLen()));
    quirk *= 1.0 + 0.04 * centeredHash(dev.fingerprint, 0x04,
                                       log2Bin(sch.reductionInner()));
    quirk *= 1.0 + 0.03 * centeredHash(dev.fingerprint, 0x05,
                                       log2Bin(sch.regTilePoints()));
    // Small per-(task, schedule) idiosyncrasy: deterministic, repeatable.
    quirk *= 1.0 + 0.02 * centeredHash(dev.fingerprint, 0x06,
                                       hashCombine(tkey, sch.hash()));
    total *= quirk;

    PRUNER_CHECK(total > 0.0);
    return total;
}

double
GpuSimulator::measure(const SubgraphTask& task, const Schedule& sch,
                      Rng& rng) const
{
    const double base = trueLatency(task, sch);
    if (!std::isfinite(base)) {
        return base;
    }
    return base * std::exp(rng.normal(0.0, kMeasureNoise));
}

double
GpuSimulator::idealLatency(const SubgraphTask& task) const
{
    const auto& dev = device_;
    double peak = dev.peak_flops;
    if (task.dtype == DType::Fp16Tc) {
        peak = dev.has_tensorcore ? dev.tc_peak_flops : dev.peak_flops * 2.0;
    }
    const double compute = task.totalFlops() / (peak * 0.92);
    const double memory = task.uniqueBytes() / (dev.peak_bandwidth * 0.88);
    return std::max(compute, memory) + dev.launch_overhead_s;
}

} // namespace pruner
