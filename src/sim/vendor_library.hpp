#pragma once

/**
 * @file vendor_library.hpp
 * Models of the off-the-shelf inference backends the paper compares against
 * (PyTorch/cudaLib, Triton via TorchInductor, Torch-TensorRT).
 *
 * Each backend is priced as the device roofline (GpuSimulator::idealLatency)
 * times a backend- and operator-dependent efficiency factor, plus a per-op
 * dispatch overhead. The special cases the paper calls out are modelled
 * explicitly:
 *   - splitK GEMM kernels in cudaLib: near-roofline even when the spatial
 *     parallelism is too small for tile-only mappings (Table 8, Fig. 13),
 *   - Winograd for 3x3 stride-1 FP32 convolutions (Section 6.2),
 *   - operator fusion in TensorRT/Triton (cheap elementwise epilogues),
 *   - library weakness on depthwise / transposed convolutions.
 */

#include "device/device_spec.hpp"
#include "ir/task.hpp"
#include "ir/workload_registry.hpp"
#include "sim/gpu_simulator.hpp"

namespace pruner {

/** The off-the-shelf backends of Figures 9/12/13 and Tables 6/8. */
enum class VendorBackend : int {
    CudaLib = 0,  ///< cuBLAS/cuDNN kernels, no framework overhead
    PyTorch = 1,  ///< cudaLib kernels + eager dispatch overhead
    Triton = 2,   ///< TorchInductor max-autotune Triton kernels
    TensorRT = 3, ///< Torch-TensorRT engine
};

const char* vendorBackendName(VendorBackend b);

/** Result of pricing one task on a vendor backend. */
struct VendorResult
{
    double latency_s = 0.0;
    bool used_splitk = false;
    bool used_winograd = false;
};

/** Vendor-library latency model for one device. */
class VendorLibrary
{
  public:
    explicit VendorLibrary(const DeviceSpec& device);

    /** Latency of a single fused subgraph on @p backend. */
    VendorResult taskLatency(const SubgraphTask& task,
                             VendorBackend backend) const;

    /** Weighted end-to-end workload latency, including per-op dispatch
     *  overhead. */
    double workloadLatency(const Workload& workload,
                           VendorBackend backend) const;

    /** True if cudaLib would select a splitK kernel for this task. */
    bool wantsSplitK(const SubgraphTask& task) const;

    const DeviceSpec& device() const { return simulator_.device(); }

  private:
    GpuSimulator simulator_;
};

} // namespace pruner
