#include "sim/vendor_library.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace pruner {

const char*
vendorBackendName(VendorBackend b)
{
    switch (b) {
      case VendorBackend::CudaLib:
        return "cudaLib";
      case VendorBackend::PyTorch:
        return "PyTorch";
      case VendorBackend::Triton:
        return "Triton";
      case VendorBackend::TensorRT:
        return "TensorRT";
    }
    return "unknown";
}

VendorLibrary::VendorLibrary(const DeviceSpec& device) : simulator_(device) {}

bool
VendorLibrary::wantsSplitK(const SubgraphTask& task) const
{
    if (task.op_class != OpClass::Gemm) {
        return false;
    }
    // splitK pays off when the reduction axis dominates the spatial
    // parallelism (decode-phase projections, Table 8's GEMM #2/#4, M-2):
    // cuBLAS switches when K is long relative to the output tile grid.
    const double k = static_cast<double>(task.reductionSize());
    const double points = static_cast<double>(task.outputPoints());
    return k >= 512.0 && k >= 2.0 * std::sqrt(points);
}

VendorResult
VendorLibrary::taskLatency(const SubgraphTask& task,
                           VendorBackend backend) const
{
    VendorResult res;
    const double ideal = simulator_.idealLatency(task);

    // --- operator-family efficiency of the cudaLib kernel set ---
    double factor;
    switch (task.op_class) {
      case OpClass::Gemm: {
        // Alignment: library kernels like multiples of 64 on the GEMM dims.
        const int64_t n = task.spatial.back().extent;
        const bool aligned = n % 64 == 0 && task.reductionSize() % 16 == 0;
        factor = aligned ? 1.08 : 1.28;
        if (wantsSplitK(task)) {
            factor = 1.12; // splitK restores parallelism
            res.used_splitk = true;
        }
        break;
      }
      case OpClass::Conv2d:
        factor = 1.12;
        if (task.conv_kernel == 3 && task.conv_stride == 1 &&
            task.dtype == DType::Fp32) {
            factor = 0.62; // Winograd F(2,3): ~2.25x fewer multiplies
            res.used_winograd = true;
        }
        break;
      case OpClass::DepthwiseConv2d:
        factor = 1.55; // libraries are notoriously weak here
        break;
      case OpClass::ConvTranspose2d:
        factor = 1.30;
        break;
      case OpClass::Elementwise:
        factor = 1.05;
        break;
      case OpClass::Reduction:
        factor = 1.15;
        break;
      default:
        factor = 1.2;
        break;
    }

    // --- backend adjustments ---
    double overhead = 0.0;
    switch (backend) {
      case VendorBackend::CudaLib:
        overhead = 3e-6;
        break;
      case VendorBackend::PyTorch:
        overhead = 12e-6; // eager dispatch
        if (task.op_class == OpClass::Elementwise ||
            task.op_class == OpClass::Reduction) {
            factor *= 1.25; // unfused pointwise chains
        }
        break;
      case VendorBackend::Triton:
        overhead = 6e-6;
        factor *= 1.22; // generated kernels trail hand-tuned ones
        if (task.op_class == OpClass::Elementwise) {
            factor *= 0.70; // but Inductor fuses pointwise chains well
        }
        if (res.used_winograd) {
            factor /= 0.62; // Triton convs do not use Winograd
            factor *= 1.05;
            res.used_winograd = false;
        }
        break;
      case VendorBackend::TensorRT:
        overhead = 2e-6;
        factor *= 0.97; // tactic selection + fusion
        if (task.op_class == OpClass::Elementwise) {
            factor *= 0.30; // fused into neighbouring kernels
        }
        break;
    }

    res.latency_s = ideal * factor + overhead;
    return res;
}

double
VendorLibrary::workloadLatency(const Workload& workload,
                               VendorBackend backend) const
{
    double total = 0.0;
    for (const auto& inst : workload.tasks) {
        total += inst.weight * taskLatency(inst.task, backend).latency_s;
    }
    return total;
}

} // namespace pruner
