#pragma once

/**
 * @file gpu_simulator.hpp
 * Ground-truth GPU performance model ("on-device measurement" substrate).
 *
 * The paper measures candidate programs on physical GPUs. This simulator
 * replaces that step with an analytical model that is strictly richer than
 * the Symbol-based Analyzer draft model: on top of the resource/penalty
 * structure SA reasons about, it models
 *
 *   - occupancy (register / shared-memory / thread limits) and its effect
 *     on latency hiding,
 *   - SM wave quantization with a partial last wave,
 *   - L2-cache capture of repeated global traffic,
 *   - global-memory coalescing and vectorized access,
 *   - shared-memory bank conflicts,
 *   - unroll / vthread instruction-level parallelism,
 *   - register spilling,
 *   - the TensorCore (WMMA 16x16x16) path for FP16 tasks,
 *   - a deterministic per-(platform, task, schedule) perturbation so
 *     different platforms rank schedules differently (the domain gap that
 *     motivates MoA), and
 *   - optional measurement noise.
 *
 * None of the learned components ever see these formulas; they only see
 * (schedule, measured latency) pairs, exactly like the real system.
 */

#include "device/device_spec.hpp"
#include "ir/task.hpp"
#include "sched/schedule.hpp"
#include "support/rng.hpp"

namespace pruner {

/** Detailed breakdown of one simulated execution (for tests/debugging). */
struct SimBreakdown
{
    double compute_s = 0.0;
    double memory_s = 0.0;
    double occupancy = 0.0;     ///< active warps / max warps per SM
    double waves = 0.0;         ///< number of SM waves
    double dram_bytes = 0.0;    ///< bytes served from DRAM
    double l2_bytes = 0.0;      ///< bytes served from L2
    double spill_factor = 1.0;  ///< register-spill slowdown
    double bank_conflict = 1.0; ///< shared-memory conflict slowdown
    bool launch_failed = false; ///< resource limits exceeded
};

/** The analytical GPU model. Thread-safe for concurrent const use. */
class GpuSimulator
{
  public:
    explicit GpuSimulator(const DeviceSpec& device);

    /**
     * Deterministic ("true") latency of @p sch on this device, in seconds.
     * Returns +inf if the schedule cannot launch (shared memory or thread
     * limits exceeded), mirroring a failed on-device measurement.
     */
    double trueLatency(const SubgraphTask& task, const Schedule& sch) const;

    /** trueLatency with the component breakdown exposed. */
    double trueLatency(const SubgraphTask& task, const Schedule& sch,
                       SimBreakdown* breakdown) const;

    /** One noisy measurement: trueLatency perturbed by ~2% lognormal
     *  measurement noise drawn from @p rng. */
    double measure(const SubgraphTask& task, const Schedule& sch,
                   Rng& rng) const;

    /**
     * Best latency achievable by a perfectly tuned implementation of
     * @p task on this device: the roofline bound at realistic peak
     * efficiency. Vendor-library models build on this.
     */
    double idealLatency(const SubgraphTask& task) const;

    const DeviceSpec& device() const { return device_; }

    /** Measurement-noise sigma (lognormal). */
    static constexpr double kMeasureNoise = 0.02;

  private:
    DeviceSpec device_;
};

} // namespace pruner
