#include "search/task_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.hpp"
#include "support/logging.hpp"

namespace pruner {

TaskScheduler::TaskScheduler(const Workload& workload)
    : workload_(&workload),
      history_(workload.tasks.size()),
      rounds_(workload.tasks.size(), 0)
{
    PRUNER_CHECK(!workload.tasks.empty());
}

void
TaskScheduler::bindObs(obs::MetricsRegistry* metrics)
{
    if (metrics == nullptr) {
        picks_roundrobin_ = picks_eps_ = picks_gradient_ = nullptr;
        return;
    }
    picks_roundrobin_ = metrics->counter("sched_pick_roundrobin_total");
    picks_eps_ = metrics->counter("sched_pick_eps_total");
    picks_gradient_ = metrics->counter("sched_pick_gradient_total");
}

size_t
TaskScheduler::nextTask(const TuningRecordDb& records, Rng& rng)
{
    return nextTasks(1, records, rng).front();
}

std::vector<size_t>
TaskScheduler::nextTasks(size_t k, const TuningRecordDb& records, Rng& rng)
{
    const size_t n = workload_->tasks.size();
    k = std::clamp<size_t>(k, 1, n);
    std::vector<size_t> out;
    out.reserve(k);
    // First pass: round-robin until every task has been visited once, so
    // the end-to-end latency is defined. A round takes the next k
    // unvisited tasks; the gradient phase never mixes into the same round
    // (keeps the pass deterministic and rng-free).
    while (round_robin_cursor_ < n && out.size() < k) {
        out.push_back(round_robin_cursor_++);
    }
    if (!out.empty()) {
        obs::counterAdd(picks_roundrobin_, out.size());
        return out;
    }
    // Epsilon-greedy over the estimated objective gradient: at most one
    // slot per round is random, the rest go to the top gradients.
    std::vector<char> taken(n, 0);
    if (rng.bernoulli(0.05)) {
        const size_t pick = rng.index(n);
        taken[pick] = 1;
        out.push_back(pick);
        obs::counterAdd(picks_eps_);
    }
    if (out.size() == k) {
        return out;
    }
    std::vector<double> gains(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        const auto& inst = workload_->tasks[i];
        const double best = records.bestLatency(inst.task);
        if (!std::isfinite(best)) {
            // Still unmeasured (all its trials failed): retry first.
            gains[i] = std::numeric_limits<double>::infinity();
            continue;
        }
        // Exploration bonus decays with rounds spent on the task.
        const double explore =
            0.05 / std::sqrt(static_cast<double>(rounds_[i] + 1));
        gains[i] = inst.weight * best * (improvementRate(i) + explore);
    }
    std::vector<size_t> order;
    order.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (!taken[i]) {
            order.push_back(i);
        }
    }
    // Ties break toward the lower index (stable sort over an index-sorted
    // range), matching the serial scheduler's strict-greater scan.
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return gains[a] > gains[b]; });
    size_t gradient_picks = 0;
    for (size_t j = 0; j < order.size() && out.size() < k; ++j) {
        out.push_back(order[j]);
        ++gradient_picks;
    }
    obs::counterAdd(picks_gradient_, gradient_picks);
    return out;
}

double
TaskScheduler::improvementRate(size_t index) const
{
    PRUNER_CHECK(index < history_.size());
    const auto& h = history_[index];
    if (h.size() < 2) {
        return 0.15; // optimistic prior for barely-tuned tasks
    }
    const double prev = h[h.size() - 2];
    const double curr = h.back();
    const double rate = (prev - curr) / prev;
    // Guard the division: prev == 0 or a +inf entry (an all-failed round
    // observed bestLatency() == +inf) yields NaN/Inf, and NaN > best_gain
    // is always false — the task would silently never win the ranking.
    if (!std::isfinite(rate)) {
        return 0.0;
    }
    return std::max(rate, 0.0);
}

void
TaskScheduler::warmStart(const TuningRecordDb& records)
{
    const size_t n = workload_->tasks.size();
    bool all_measured = true;
    for (size_t i = 0; i < n; ++i) {
        const double best = records.bestLatency(workload_->tasks[i].task);
        if (std::isfinite(best)) {
            // Seed the rate history settled at the warm incumbent (two
            // equal entries => rate 0): a restored task resumes from a
            // converged state instead of sitting on the optimistic prior
            // until its second observe, which would overrate every warm
            // task identically.
            history_[i].assign(2, best);
        } else {
            all_measured = false;
        }
    }
    // The round-robin pass exists to make the end-to-end latency defined;
    // with every task warm-started it would only repeat known work.
    if (all_measured) {
        round_robin_cursor_ = n;
    }
}

TaskSchedulerState
TaskScheduler::exportState() const
{
    TaskSchedulerState state;
    state.history = history_;
    state.rounds = rounds_;
    state.round_robin_cursor = round_robin_cursor_;
    return state;
}

void
TaskScheduler::restoreState(const TaskSchedulerState& state)
{
    PRUNER_CHECK_MSG(state.history.size() == history_.size() &&
                         state.rounds.size() == rounds_.size(),
                     "scheduler state is for a different workload");
    history_ = state.history;
    rounds_ = state.rounds;
    round_robin_cursor_ = state.round_robin_cursor;
}

void
TaskScheduler::observe(size_t index, double best_latency)
{
    PRUNER_CHECK(index < history_.size());
    ++rounds_[index];
    auto& h = history_[index];
    h.push_back(best_latency);
    if (h.size() > 8) {
        h.erase(h.begin());
    }
}

} // namespace pruner
