#include "search/task_scheduler.hpp"

#include <cmath>
#include <limits>

#include "support/logging.hpp"

namespace pruner {

TaskScheduler::TaskScheduler(const Workload& workload)
    : workload_(&workload),
      history_(workload.tasks.size()),
      rounds_(workload.tasks.size(), 0)
{
    PRUNER_CHECK(!workload.tasks.empty());
}

size_t
TaskScheduler::nextTask(const TuningRecordDb& records, Rng& rng)
{
    const size_t n = workload_->tasks.size();
    // First pass: round-robin until every task has been visited once, so
    // the end-to-end latency is defined.
    if (round_robin_cursor_ < n) {
        return round_robin_cursor_++;
    }
    // Epsilon-greedy over the estimated objective gradient.
    if (rng.bernoulli(0.05)) {
        return rng.index(n);
    }
    size_t best_idx = 0;
    double best_gain = -1.0;
    for (size_t i = 0; i < n; ++i) {
        const auto& inst = workload_->tasks[i];
        const double best = records.bestLatency(inst.task);
        if (!std::isfinite(best)) {
            return i; // still unmeasured (all its trials failed): retry
        }
        // Recent improvement rate from this task's round history.
        double rate = 0.15; // optimistic prior for barely-tuned tasks
        const auto& h = history_[i];
        if (h.size() >= 2) {
            const double prev = h[h.size() - 2];
            const double curr = h.back();
            rate = std::max((prev - curr) / prev, 0.0);
        }
        // Exploration bonus decays with rounds spent on the task.
        const double explore =
            0.05 / std::sqrt(static_cast<double>(rounds_[i] + 1));
        const double gain = inst.weight * best * (rate + explore);
        if (gain > best_gain) {
            best_gain = gain;
            best_idx = i;
        }
    }
    return best_idx;
}

void
TaskScheduler::warmStart(const TuningRecordDb& records)
{
    const size_t n = workload_->tasks.size();
    bool all_measured = true;
    for (size_t i = 0; i < n; ++i) {
        const double best = records.bestLatency(workload_->tasks[i].task);
        if (std::isfinite(best)) {
            history_[i].push_back(best);
        } else {
            all_measured = false;
        }
    }
    // The round-robin pass exists to make the end-to-end latency defined;
    // with every task warm-started it would only repeat known work.
    if (all_measured) {
        round_robin_cursor_ = n;
    }
}

void
TaskScheduler::observe(size_t index, double best_latency)
{
    PRUNER_CHECK(index < history_.size());
    ++rounds_[index];
    auto& h = history_[index];
    h.push_back(best_latency);
    if (h.size() > 8) {
        h.erase(h.begin());
    }
}

} // namespace pruner
