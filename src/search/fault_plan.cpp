#include "search/fault_plan.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace pruner {

namespace {
/** Domain separators so the permanent and transient streams never
 *  correlate with each other or with the measurement-noise streams. */
constexpr uint64_t kLaunchSalt = 0xFA17'1A0C'4ED5'0001ull;
constexpr uint64_t kTransientSalt = 0xFA17'71AE'0007'0002ull;
} // namespace

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::LaunchFailure: return "launch";
    case FaultKind::Timeout: return "timeout";
    case FaultKind::FlakyLatency: return "flaky";
    }
    return "?";
}

FaultKind
FaultPlan::draw(uint64_t task_hash, uint64_t sched_hash, uint32_t attempt,
                double* flaky_scale) const
{
    const uint64_t pair =
        hashCombine(hashCombine(seed, task_hash), sched_hash);
    if (launch_failure_rate > 0.0) {
        // Attempt-independent: a pair that cannot launch never launches.
        Rng launch_rng(hashCombine(pair, kLaunchSalt));
        if (launch_rng.bernoulli(launch_failure_rate)) {
            return FaultKind::LaunchFailure;
        }
    }
    if (timeout_rate > 0.0 || flaky_rate > 0.0) {
        Rng transient_rng(hashCombine(hashCombine(pair, kTransientSalt),
                                      static_cast<uint64_t>(attempt)));
        const double u = transient_rng.uniform();
        if (u < timeout_rate) {
            return FaultKind::Timeout;
        }
        if (u < timeout_rate + flaky_rate) {
            if (flaky_scale != nullptr) {
                *flaky_scale =
                    std::exp(transient_rng.normal(0.0, flaky_sigma));
            }
            return FaultKind::FlakyLatency;
        }
    }
    return FaultKind::None;
}

} // namespace pruner
