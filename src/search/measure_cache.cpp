#include "search/measure_cache.hpp"

#include "support/rng.hpp"

namespace pruner {

MeasureCache::MeasureCache(size_t capacity) : capacity_(capacity) {}

uint64_t
MeasureCache::combinedKey(uint64_t task_hash, uint64_t sched_hash) const
{
    return hashCombine(task_hash, sched_hash);
}

bool
MeasureCache::lookup(uint64_t task_hash, uint64_t sched_hash,
                     double* latency)
{
    if (capacity_ == 0) {
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(combinedKey(task_hash, sched_hash));
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (latency != nullptr) {
        *latency = it->second->latency;
    }
    return true;
}

void
MeasureCache::insert(uint64_t task_hash, uint64_t sched_hash, double latency)
{
    if (capacity_ == 0) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t key = combinedKey(task_hash, sched_hash);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->latency = latency;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lru_.size() >= capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front({key, task_hash, sched_hash, latency});
    index_[key] = lru_.begin();
}

std::vector<MeasureCacheEntry>
MeasureCache::exportEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MeasureCacheEntry> out;
    out.reserve(lru_.size());
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        out.push_back({it->task_hash, it->sched_hash, it->latency});
    }
    return out;
}

void
MeasureCache::restoreEntries(const std::vector<MeasureCacheEntry>& entries)
{
    if (capacity_ == 0) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    // Entries arrive LRU-first; push_front in order rebuilds the chain
    // (front = MRU). When over capacity, keep the most recent ones.
    const size_t skip =
        entries.size() > capacity_ ? entries.size() - capacity_ : 0;
    for (size_t i = skip; i < entries.size(); ++i) {
        const MeasureCacheEntry& e = entries[i];
        const uint64_t key = combinedKey(e.task_hash, e.sched_hash);
        lru_.push_front({key, e.task_hash, e.sched_hash, e.latency});
        index_[key] = lru_.begin();
    }
}

size_t
MeasureCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

size_t
MeasureCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

size_t
MeasureCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

size_t
MeasureCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
MeasureCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    hits_ = misses_ = evictions_ = 0;
}

} // namespace pruner
