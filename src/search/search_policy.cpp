#include "search/search_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "cost/async_trainer.hpp"
#include "db/artifact_session.hpp"
#include "nn/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_histograms.hpp"
#include "obs/trace.hpp"
#include "replay/checkpoint.hpp"
#include "replay/session_recorder.hpp"
#include "search/explorer.hpp"
#include "support/logging.hpp"

namespace pruner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/** Unbinds a model's metric handles when the per-run registry dies (the
 *  policy's model outlives tune(), the registry does not). */
struct ModelObsGuard
{
    CostModel* model;
    ~ModelObsGuard() { model->bindMetrics(nullptr); }
};

} // namespace

namespace obs_detail {

void
exportPoolStats(obs::MetricsRegistry& metrics, const ThreadPool* pool)
{
    if (pool == nullptr) {
        return;
    }
    const auto ch = obs::MetricChannel::Execution;
    metrics.gauge("pool_workers", ch)
        ->set(static_cast<int64_t>(pool->size()));
    metrics.gauge("pool_jobs_submitted", ch)
        ->set(static_cast<int64_t>(pool->jobsSubmitted()));
    metrics.gauge("pool_jobs_completed", ch)
        ->set(static_cast<int64_t>(pool->jobsCompleted()));
    metrics.gauge("pool_peak_queue_depth", ch)
        ->set(static_cast<int64_t>(pool->peakQueueDepth()));
}

void
exportKernelTiers(obs::MetricsRegistry& metrics)
{
    // Host property, not a trajectory property: Execution channel, so a
    // trace replayed on another machine still identity-matches.
    const auto ch = obs::MetricChannel::Execution;
    const nnkernel::KernelTiers tiers = nnkernel::kernelTiers();
    metrics.setLabel("nn_kernel_matmul", tiers.matmul, ch);
    metrics.setLabel("nn_kernel_matmul_nt", tiers.matmul_nt, ch);
    metrics.setLabel("nn_kernel_matmul_tn_acc", tiers.matmul_tn_acc, ch);
    metrics.setLabel("nn_kernel_matmul_tn_add_partial",
                     tiers.matmul_tn_add_partial, ch);
    metrics.setLabel("nn_kernel_matmul_tn_seg", tiers.matmul_tn_seg, ch);
    // CPU-supported tiers the startup self-check rejected. Zero on a
    // healthy host; nonzero means a vector kernel broke its byte-identity
    // contract and silently fell back (surfaced as a tuneReport warning).
    // Counters are monotonic, so set-once-per-export stays idempotent:
    // the demotion total is fixed after the first dispatch.
    obs::Counter* demotions =
        metrics.counter("kernel_tier_demotions_total", ch);
    const size_t total = nnkernel::kernelTierDemotions();
    if (demotions != nullptr && demotions->value() < total) {
        demotions->add(total - demotions->value());
    }
}

void
fillResultCounters(TuneResult& result, const obs::MetricsRegistry& metrics)
{
    // Satellite consolidation: TuneResult's ad-hoc counters are now read
    // back from the per-run registry snapshot — one source of truth for
    // the result struct, the /metrics exposition, and the round stats.
    const obs::MetricsSnapshot snap = metrics.snapshot();
    result.trials = snap.counterValue("measure_trials_total");
    result.failed_trials = snap.counterValue("measure_failed_trials_total");
    result.cache_hits = snap.counterValue("measure_cache_hits_total");
    result.simulated_trials =
        snap.counterValue("measure_simulated_trials_total");
    result.injected_faults =
        snap.counterValue("fault_injected_launch_total") +
        snap.counterValue("fault_injected_timeout_total") +
        snap.counterValue("fault_injected_flaky_total");
    result.warm_records = snap.counterValue("db_warm_records_total");
}

} // namespace obs_detail

double
TuneResult::timeToReach(double latency) const
{
    for (const auto& point : curve) {
        if (point.latency_s <= latency) {
            return point.time_s;
        }
    }
    return kInf;
}

double
workloadBest(const Workload& workload, const TuningRecordDb& db)
{
    double total = 0.0;
    for (const auto& inst : workload.tasks) {
        const double best = db.bestLatency(inst.task);
        if (!std::isfinite(best)) {
            return kInf;
        }
        total += inst.weight * best;
    }
    return total;
}

std::vector<Schedule>
selectForMeasurement(const std::vector<ScoredSchedule>& ranked,
                     const SubgraphTask& task, const TuningRecordDb& db,
                     const ScheduleSampler& sampler, size_t n, double eps,
                     Rng& rng)
{
    std::vector<Schedule> out;
    std::unordered_set<uint64_t> chosen;
    auto try_add = [&](const Schedule& sch) {
        if (out.size() >= n) {
            return;
        }
        if (db.measured(task, sch) || !chosen.insert(sch.hash()).second) {
            return;
        }
        out.push_back(sch);
    };
    // Epsilon share comes from fresh random samples (exploration).
    const size_t n_random =
        static_cast<size_t>(std::ceil(eps * static_cast<double>(n)));
    for (const auto& scored : ranked) {
        if (out.size() + n_random >= n) {
            break;
        }
        try_add(scored.sch);
    }
    size_t guard = 0;
    while (out.size() < n && guard++ < n * 30) {
        try_add(sampler.sample(rng));
    }
    return out;
}

EvoCostModelPolicy::EvoCostModelPolicy(std::string name,
                                       const DeviceSpec& device,
                                       std::unique_ptr<CostModel> model,
                                       EvoPolicyConfig config)
    : name_(std::move(name)),
      device_(device),
      model_(std::move(model)),
      config_(config)
{
    PRUNER_CHECK(model_ != nullptr);
}

bool
EvoCostModelPolicy::supportsTask(const SubgraphTask&) const
{
    return true;
}

std::vector<double>
EvoCostModelPolicy::scoreCandidates(
    const SubgraphTask& task, std::span<const Schedule> candidates) const
{
    return model_->predict(task, candidates);
}

TuneResult
EvoCostModelPolicy::tune(const Workload& workload, const TuneOptions& opts)
{
    TuneResult result;
    result.policy = name_;

    // Operator-coverage check (Figure 8: unsupported operators abort the
    // whole workload for Adatune / Felix / TLM).
    for (const auto& inst : workload.tasks) {
        if (!supportsTask(inst.task)) {
            result.failed = true;
            result.failure_reason =
                "unsupported operator: " + inst.task.key;
            result.final_latency = kInf;
            return result;
        }
    }

    SimClock clock;
    Rng rng(opts.seed);
    // Per-run observability. Every component accumulates into this private
    // registry (so concurrent tune() calls never share counters); the
    // caller's registry, if any, receives one merge at the end.
    obs::MetricsRegistry run_metrics;
    obs::Tracer* tracer = opts.tracer;
    obs::ScopedSpan tune_span(tracer, obs::TraceTrack::Main, &clock, "tune",
                              "session");
    tune_span.argStr("policy", name_);
    Measurer measurer(device_, &clock, hashCombine(opts.seed, 0x3EA5),
                      opts.constants);
    MeasureEnv env(measurer, opts.measure_workers, opts.measure_cache);
    measurer.setMetrics(&run_metrics);
    measurer.setTracer(tracer);
    measurer.setFaultPlan(opts.fault_plan);
    // Crash-safe checkpoint/resume (see replay/checkpoint.hpp): the
    // fingerprint binds a checkpoint to this exact run identity, and a
    // missing/corrupt/incompatible file degrades to a cold start.
    const uint64_t ckpt_fp = checkpointFingerprint(
        replayFactory(), replayConfig(), device_.name, workload, opts);
    std::optional<TuningCheckpoint> ckpt;
    if (!opts.resume_from.empty()) {
        ckpt = loadCheckpoint(opts.resume_from, ckpt_fp, &run_metrics);
    }
    const bool resumed = ckpt.has_value();
    SessionRecorder* recorder = opts.recorder;
    if (resumed && recorder != nullptr) {
        PRUNER_WARN("session recorder disabled for the resumed run: the "
                    "log would only cover the rounds after the checkpoint");
        recorder = nullptr;
    }
    measurer.setRecorder(recorder);
    // Pin the compile-overlap divisor so a recorded session replays with
    // the same simulated clock at any real worker count; a resumed run
    // pins the writing run's divisor the same way.
    measurer.setClockLanes(
        resumed ? static_cast<size_t>(ckpt->clock_lanes)
                : static_cast<size_t>(opts.clock_lanes > 0
                                          ? opts.clock_lanes
                                          : std::max(opts.measure_workers,
                                                     1)));
    if (recorder != nullptr) {
        recorder->beginSession(replayFactory(), replayConfig(),
                               device_.name, workload, opts);
    }
    EvoPolicyConfig run_config = config_;
    run_config.evolution.score_pool = env.pool();
    run_config.evolution.score_chunk =
        static_cast<size_t>(std::max(opts.predict_batch, 1));
    run_config.evolution.metrics = &run_metrics;
    // Draft-stage explorer ("" -> "evolution", the exact pre-interface
    // loop). Owns no RNG: every draw flows through the loop's rng below.
    std::unique_ptr<Explorer> explorer = ExplorerRegistry::instance().make(
        opts.explorer, opts.explorer_config);
    explorer->bindMetrics(&run_metrics);
    TuningRecordDb db;
    TaskScheduler scheduler(workload);
    scheduler.bindObs(&run_metrics);
    model_->bindMetrics(&run_metrics);
    ModelObsGuard model_obs_guard{model_.get()};
    obs_detail::exportKernelTiers(run_metrics);
    obs::RoundStatsCollector round_stats(opts.collect_round_stats, &clock,
                                         &measurer);
    // The evolutionary loop scores its population inline, so the whole
    // exploration delta is the draft stage; there is no separate verify
    // pass to observe (round_verify_time_us stays empty here).
    obs::StageTimeHistograms stage_hists(&run_metrics);

    ArtifactSession artifacts(opts.artifact_db, opts.artifact_db_path);
    artifacts.bindMetrics(&run_metrics);
    const std::string model_key =
        artifactModelKey(name_, model_->name(), device_.name);
    // A resumed run restores db/cache/model from the checkpoint instead:
    // warm-starting on top would double-apply the stored records.
    if (artifacts.enabled() && !resumed) {
        obs::ScopedSpan io_span(tracer, obs::TraceTrack::Io, &clock,
                                "warm_start", "io");
        const WarmStartStats warm = artifacts.warmStart(
            workload, opts.warm_start_records ? &db : nullptr,
            opts.measure_cache && opts.reuse_measure_cache ? env.cacheMut()
                                                           : nullptr,
            opts.reuse_model_checkpoint ? model_.get() : nullptr, model_key);
        io_span.argU64("records", warm.records_replayed);
        io_span.argU64("cache_entries", warm.cache_entries);
        if (warm.records_replayed > 0) {
            scheduler.warmStart(db);
            observeWarmRecords(*explorer, device_, db.records());
        }
    }

    // Resume before the async trainer exists: the back clone constructed
    // below must inherit the restored weights and training-RNG lineage.
    int start_round = 0;
    if (resumed) {
        CheckpointTargets targets;
        targets.clock = &clock;
        targets.rng = &rng;
        targets.measurer = &measurer;
        targets.scheduler = &scheduler;
        targets.db = &db;
        targets.cache = opts.measure_cache ? env.cacheMut() : nullptr;
        targets.explorer = explorer.get();
        targets.model = model_.get();
        targets.metrics = &run_metrics;
        targets.round_stats = &round_stats;
        targets.curve = &result.curve;
        start_round = applyCheckpoint(*ckpt, workload, targets);
        PRUNER_INFO("resumed from '" << opts.resume_from << "' at round "
                                     << start_round);
    }

    // Async online training: the update runs on the verify pool between
    // rounds and installs before the next round's first prediction. The
    // evolution loop predicts throughout its draft, so the overlap window
    // is smaller than Pruner's model-free LSE draft, but the update still
    // shares the pool instead of blocking the loop.
    std::unique_ptr<AsyncModelTrainer> async_trainer;
    if (opts.async_training && env.pool() != nullptr) {
        async_trainer =
            std::make_unique<AsyncModelTrainer>(*model_, *env.pool());
        async_trainer->bindObs(tracer, &clock, &run_metrics);
    }

    for (int round = start_round; round < opts.rounds; ++round) {
        obs::ScopedSpan round_span(tracer, obs::TraceTrack::Main, &clock,
                                   "round", "sched");
        round_span.argU64("round", static_cast<uint64_t>(round));
        const auto picked = scheduler.nextTasks(
            static_cast<size_t>(std::max(opts.tasks_per_round, 1)), db,
            rng);
        round_span.argU64("tasks", picked.size());
        round_stats.beginRound(round, picked);
        if (picked.size() > 1) {
            // The serial loop never charges task_switch_overhead (its
            // calibrated per-round constants absorb it, and K=1 stays
            // byte-identical to it). A sharded round pays one explicit
            // switch charge for hopping across K tasks — flat per round
            // regardless of K, and far below the compile slots the
            // round-wide overlap saves.
            clock.charge(CostCategory::Other,
                         opts.constants.task_switch_overhead);
        }
        // Round-boundary weight swap, before the round's first predict.
        if (async_trainer != nullptr) {
            async_trainer->install();
        }
        if (recorder != nullptr) {
            recorder->onRound(round, picked);
            // Hash at the install point, where async and synchronous
            // training provably hold identical weights.
            recorder->onModelState(round, paramsHash(model_->getParams()));
        }

        struct RoundSlot
        {
            size_t task_index;
            const SubgraphTask* task;
            std::vector<Schedule> to_measure;
        };
        std::vector<RoundSlot> slots;
        slots.reserve(picked.size());

        // Draft + verify every picked task (the evolution's fitness
        // slices fan out across the shared pool), collecting each task's
        // measurement batch.
        const double draft_begin_s =
            clock.total(CostCategory::Exploration);
        for (const size_t idx : picked) {
            const SubgraphTask& task = workload.tasks[idx].task;
            ScheduleSampler sampler(task, device_);

            std::vector<Schedule> seeds;
            if (const Schedule* best = db.bestSchedule(task)) {
                seeds.push_back(*best);
            }
            size_t evals = 0;
            obs::ScopedSpan draft_span(tracer, obs::TraceTrack::Main,
                                       &clock, "draft", "explore");
            draft_span.argU64("task", idx);
            draft_span.argStr("explorer", explorer->key());
            ExplorerContext ectx;
            ectx.task = &task;
            ectx.device = &device_;
            ectx.seeds = &seeds;
            ectx.score = [&](std::span<const Schedule> cands) {
                return scoreCandidates(task, cands);
            };
            ectx.rng = &rng;
            ectx.n_evaluated = &evals;
            ectx.evo = run_config.evolution;
            const auto ranked = explorer->proposeBatch(ectx);
            clock.charge(CostCategory::Exploration,
                         static_cast<double>(evals) *
                             model_->evalCostPerCandidate());
            draft_span.argU64("evals", evals);
            draft_span.argU64("ranked", ranked.size());
            draft_span.close();
            round_stats.addDrafted(ranked.size());

            slots.push_back(
                {idx, &task,
                 selectForMeasurement(
                     ranked, task, db, sampler,
                     static_cast<size_t>(opts.measures_per_round),
                     opts.eps_greedy, rng)});
            round_stats.addMeasured(slots.back().to_measure.size());
        }
        stage_hists.observeDraft(clock.total(CostCategory::Exploration) -
                                 draft_begin_s);

        // Measure the whole round through one pooled pass (adaptive
        // measurement keeps its serial on-device loop by design).
        std::vector<std::vector<double>> round_latencies;
        if (config_.adaptive_measurement) {
            round_latencies.reserve(slots.size());
            for (const RoundSlot& slot : slots) {
                round_latencies.push_back(measurer.measureAdaptive(
                    *slot.task, slot.to_measure,
                    config_.adaptive_time_scale,
                    config_.adaptive_extra_noise));
            }
        } else {
            std::vector<RoundBatch> batches;
            batches.reserve(slots.size());
            for (const RoundSlot& slot : slots) {
                batches.push_back({slot.task, &slot.to_measure});
            }
            round_latencies = measurer.measureRound(batches);
        }
        for (size_t s = 0; s < slots.size(); ++s) {
            const RoundSlot& slot = slots[s];
            const auto& latencies = round_latencies[s];
            for (size_t i = 0; i < slot.to_measure.size(); ++i) {
                if (std::isfinite(latencies[i])) {
                    db.add({*slot.task, slot.to_measure[i], latencies[i]});
                }
            }
            artifacts.onMeasured(*slot.task, slot.to_measure, latencies);
            explorer->observe(*slot.task, device_, slot.to_measure,
                              latencies);
            scheduler.observe(slot.task_index, db.bestLatency(*slot.task));
        }

        const double train_begin_s = clock.total(CostCategory::Training);
        if (opts.online_training && config_.online_training &&
            db.size() >= 16) {
            // The "train" span brackets the Training charge point, which
            // sync and async modes share — its deterministic timestamps
            // are identical either way (the async overlap window itself
            // is the Execution-channel "async_update" span).
            obs::ScopedSpan train_span(tracer, obs::TraceTrack::Main,
                                       &clock, "train", "train");
            if (async_trainer != nullptr) {
                async_trainer->beginUpdate(db.recentWindow(768),
                                           opts.train_epochs);
            } else {
                model_->train(db.recentWindow(768), opts.train_epochs);
            }
            // Charged where synchronous training would pay it, so async
            // mode never changes the simulated clock.
            clock.charge(CostCategory::Training,
                         model_->trainCostPerRound());
        }
        // Observed only for rounds that actually trained, so the train
        // histogram's count is the number of training rounds.
        const double train_s =
            clock.total(CostCategory::Training) - train_begin_s;
        if (train_s > 0.0) {
            stage_hists.observeTrain(train_s);
        }

        const double e2e = workloadBest(workload, db);
        if (std::isfinite(e2e)) {
            result.curve.push_back({clock.now(), e2e});
            if (tracer != nullptr) {
                const auto h = tracer->instant(obs::TraceTrack::Main,
                                               "curve_point", "curve",
                                               clock.now());
                tracer->argDouble(h, "latency_s", e2e);
            }
        }
        round_stats.endRound(e2e);

        if (opts.checkpoint_interval > 0 &&
            ((round + 1) % opts.checkpoint_interval == 0 ||
             round + 1 == opts.rounds)) {
            if (opts.checkpoint_path.empty()) {
                PRUNER_WARN("checkpoint_interval set but checkpoint_path "
                            "is empty; not checkpointing");
            } else {
                // Drain the in-flight update first so the snapshot holds
                // this round's weights and the back model's training RNG
                // is quiescent. Value-neutral: the next prediction would
                // install before touching the model anyway.
                if (async_trainer != nullptr) {
                    async_trainer->install();
                }
                CheckpointSources src;
                src.fingerprint = ckpt_fp;
                src.next_round = round + 1;
                src.clock_lanes = measurer.clockLanes();
                src.clock = &clock;
                src.rng = &rng;
                src.measurer = &measurer;
                src.scheduler = &scheduler;
                src.db = &db;
                src.cache = opts.measure_cache ? &env.cache() : nullptr;
                src.explorer = explorer.get();
                src.model = model_.get();
                src.model_rng =
                    async_trainer != nullptr
                        ? async_trainer->backModel()->trainingRng()
                        : model_->trainingRng();
                src.curve = &result.curve;
                src.round_stats = &round_stats.rounds();
                src.metrics = &run_metrics;
                saveCheckpoint(opts.checkpoint_path, buildCheckpoint(src),
                               &run_metrics);
            }
        }
    }
    // Drain the last in-flight update before the divergence probe and the
    // checkpoint: both must see the final weights.
    if (async_trainer != nullptr) {
        async_trainer->install();
    }

    result.best_per_task.reserve(workload.tasks.size());
    for (const auto& inst : workload.tasks) {
        result.best_per_task.push_back(db.bestLatency(inst.task));
    }
    result.final_latency = workloadBest(workload, db);
    result.total_time_s = clock.now();
    result.exploration_s = clock.total(CostCategory::Exploration);
    result.training_s = clock.total(CostCategory::Training);
    result.measurement_s = clock.total(CostCategory::Measurement);
    result.compile_s = clock.total(CostCategory::Compile);
    obs_detail::fillResultCounters(result, run_metrics);
    result.round_stats = round_stats.take();

    // A learned model that diverged (non-finite scores) means the policy
    // lost its search signal — the paper observes this for TLP fine-tuned
    // on small data ("the tuning curve disappears").
    const Schedule probe_sch =
        ScheduleSampler(workload.tasks[0].task, device_).sample(rng);
    const auto probe = model_->predict(
        workload.tasks[0].task, std::span<const Schedule>(&probe_sch, 1));
    if (!probe.empty() && !std::isfinite(probe[0])) {
        result.failed = true;
        result.failure_reason = "cost model diverged";
    }
    // Checkpoint only after the divergence probe: a poisoned model must
    // not be persisted where the next warm-started run would restore it.
    if (artifacts.enabled()) {
        obs::ScopedSpan io_span(tracer, obs::TraceTrack::Io, &clock,
                                "db_finish", "io");
        artifacts.finish(opts.measure_cache ? &env.cache() : nullptr,
                         opts.reuse_model_checkpoint && !result.failed
                             ? model_.get()
                             : nullptr,
                         model_key);
    }
    if (recorder != nullptr) {
        recorder->onEnd(result, paramsHash(model_->getParams()));
    }
    tune_span.close();
    obs_detail::exportPoolStats(run_metrics, env.pool());
    if (opts.metrics != nullptr) {
        run_metrics.mergeInto(*opts.metrics);
    }
    return result;
}

} // namespace pruner
