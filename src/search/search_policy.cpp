#include "search/search_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "cost/async_trainer.hpp"
#include "db/artifact_session.hpp"
#include "replay/session_recorder.hpp"
#include "support/logging.hpp"

namespace pruner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

double
TuneResult::timeToReach(double latency) const
{
    for (const auto& point : curve) {
        if (point.latency_s <= latency) {
            return point.time_s;
        }
    }
    return kInf;
}

double
workloadBest(const Workload& workload, const TuningRecordDb& db)
{
    double total = 0.0;
    for (const auto& inst : workload.tasks) {
        const double best = db.bestLatency(inst.task);
        if (!std::isfinite(best)) {
            return kInf;
        }
        total += inst.weight * best;
    }
    return total;
}

std::vector<Schedule>
selectForMeasurement(const std::vector<ScoredSchedule>& ranked,
                     const SubgraphTask& task, const TuningRecordDb& db,
                     const ScheduleSampler& sampler, size_t n, double eps,
                     Rng& rng)
{
    std::vector<Schedule> out;
    std::unordered_set<uint64_t> chosen;
    auto try_add = [&](const Schedule& sch) {
        if (out.size() >= n) {
            return;
        }
        if (db.measured(task, sch) || !chosen.insert(sch.hash()).second) {
            return;
        }
        out.push_back(sch);
    };
    // Epsilon share comes from fresh random samples (exploration).
    const size_t n_random =
        static_cast<size_t>(std::ceil(eps * static_cast<double>(n)));
    for (const auto& scored : ranked) {
        if (out.size() + n_random >= n) {
            break;
        }
        try_add(scored.sch);
    }
    size_t guard = 0;
    while (out.size() < n && guard++ < n * 30) {
        try_add(sampler.sample(rng));
    }
    return out;
}

EvoCostModelPolicy::EvoCostModelPolicy(std::string name,
                                       const DeviceSpec& device,
                                       std::unique_ptr<CostModel> model,
                                       EvoPolicyConfig config)
    : name_(std::move(name)),
      device_(device),
      model_(std::move(model)),
      config_(config)
{
    PRUNER_CHECK(model_ != nullptr);
}

bool
EvoCostModelPolicy::supportsTask(const SubgraphTask&) const
{
    return true;
}

std::vector<double>
EvoCostModelPolicy::scoreCandidates(
    const SubgraphTask& task, std::span<const Schedule> candidates) const
{
    return model_->predict(task, candidates);
}

TuneResult
EvoCostModelPolicy::tune(const Workload& workload, const TuneOptions& opts)
{
    TuneResult result;
    result.policy = name_;

    // Operator-coverage check (Figure 8: unsupported operators abort the
    // whole workload for Adatune / Felix / TLM).
    for (const auto& inst : workload.tasks) {
        if (!supportsTask(inst.task)) {
            result.failed = true;
            result.failure_reason =
                "unsupported operator: " + inst.task.key;
            result.final_latency = kInf;
            return result;
        }
    }

    SimClock clock;
    Rng rng(opts.seed);
    Measurer measurer(device_, &clock, hashCombine(opts.seed, 0x3EA5),
                      opts.constants);
    MeasureEnv env(measurer, opts.measure_workers, opts.measure_cache);
    measurer.setFaultPlan(opts.fault_plan);
    measurer.setRecorder(opts.recorder);
    // Pin the compile-overlap divisor so a recorded session replays with
    // the same simulated clock at any real worker count.
    measurer.setClockLanes(static_cast<size_t>(
        opts.clock_lanes > 0 ? opts.clock_lanes
                             : std::max(opts.measure_workers, 1)));
    if (opts.recorder != nullptr) {
        opts.recorder->beginSession(replayFactory(), replayConfig(),
                                    device_.name, workload, opts);
    }
    EvoPolicyConfig run_config = config_;
    run_config.evolution.score_pool = env.pool();
    run_config.evolution.score_chunk =
        static_cast<size_t>(std::max(opts.predict_batch, 1));
    TuningRecordDb db;
    TaskScheduler scheduler(workload);

    ArtifactSession artifacts(opts.artifact_db, opts.artifact_db_path);
    const std::string model_key =
        artifactModelKey(name_, model_->name(), device_.name);
    if (artifacts.enabled()) {
        const WarmStartStats warm = artifacts.warmStart(
            workload, opts.warm_start_records ? &db : nullptr,
            opts.measure_cache && opts.reuse_measure_cache ? env.cacheMut()
                                                           : nullptr,
            opts.reuse_model_checkpoint ? model_.get() : nullptr, model_key);
        result.warm_records = warm.records_replayed;
        if (warm.records_replayed > 0) {
            scheduler.warmStart(db);
        }
    }

    // Async online training: the update runs on the verify pool between
    // rounds and installs before the next round's first prediction. The
    // evolution loop predicts throughout its draft, so the overlap window
    // is smaller than Pruner's model-free LSE draft, but the update still
    // shares the pool instead of blocking the loop.
    std::unique_ptr<AsyncModelTrainer> async_trainer;
    if (opts.async_training && env.pool() != nullptr) {
        async_trainer =
            std::make_unique<AsyncModelTrainer>(*model_, *env.pool());
    }

    for (int round = 0; round < opts.rounds; ++round) {
        const auto picked = scheduler.nextTasks(
            static_cast<size_t>(std::max(opts.tasks_per_round, 1)), db,
            rng);
        if (picked.size() > 1) {
            // The serial loop never charges task_switch_overhead (its
            // calibrated per-round constants absorb it, and K=1 stays
            // byte-identical to it). A sharded round pays one explicit
            // switch charge for hopping across K tasks — flat per round
            // regardless of K, and far below the compile slots the
            // round-wide overlap saves.
            clock.charge(CostCategory::Other,
                         opts.constants.task_switch_overhead);
        }
        // Round-boundary weight swap, before the round's first predict.
        if (async_trainer != nullptr) {
            async_trainer->install();
        }
        if (opts.recorder != nullptr) {
            opts.recorder->onRound(round, picked);
            // Hash at the install point, where async and synchronous
            // training provably hold identical weights.
            opts.recorder->onModelState(round,
                                        paramsHash(model_->getParams()));
        }

        struct RoundSlot
        {
            size_t task_index;
            const SubgraphTask* task;
            std::vector<Schedule> to_measure;
        };
        std::vector<RoundSlot> slots;
        slots.reserve(picked.size());

        // Draft + verify every picked task (the evolution's fitness
        // slices fan out across the shared pool), collecting each task's
        // measurement batch.
        for (const size_t idx : picked) {
            const SubgraphTask& task = workload.tasks[idx].task;
            ScheduleSampler sampler(task, device_);
            EvolutionarySearch evo(task, device_);

            std::vector<Schedule> seeds;
            if (const Schedule* best = db.bestSchedule(task)) {
                seeds.push_back(*best);
            }
            size_t evals = 0;
            const auto ranked = evo.run(
                run_config.evolution,
                [&](std::span<const Schedule> cands) {
                    return scoreCandidates(task, cands);
                },
                seeds, rng, &evals);
            clock.charge(CostCategory::Exploration,
                         static_cast<double>(evals) *
                             model_->evalCostPerCandidate());

            slots.push_back(
                {idx, &task,
                 selectForMeasurement(
                     ranked, task, db, sampler,
                     static_cast<size_t>(opts.measures_per_round),
                     opts.eps_greedy, rng)});
        }

        // Measure the whole round through one pooled pass (adaptive
        // measurement keeps its serial on-device loop by design).
        std::vector<std::vector<double>> round_latencies;
        if (config_.adaptive_measurement) {
            round_latencies.reserve(slots.size());
            for (const RoundSlot& slot : slots) {
                round_latencies.push_back(measurer.measureAdaptive(
                    *slot.task, slot.to_measure,
                    config_.adaptive_time_scale,
                    config_.adaptive_extra_noise));
            }
        } else {
            std::vector<RoundBatch> batches;
            batches.reserve(slots.size());
            for (const RoundSlot& slot : slots) {
                batches.push_back({slot.task, &slot.to_measure});
            }
            round_latencies = measurer.measureRound(batches);
        }
        for (size_t s = 0; s < slots.size(); ++s) {
            const RoundSlot& slot = slots[s];
            const auto& latencies = round_latencies[s];
            for (size_t i = 0; i < slot.to_measure.size(); ++i) {
                if (std::isfinite(latencies[i])) {
                    db.add({*slot.task, slot.to_measure[i], latencies[i]});
                }
            }
            artifacts.onMeasured(*slot.task, slot.to_measure, latencies);
            scheduler.observe(slot.task_index, db.bestLatency(*slot.task));
        }

        if (opts.online_training && config_.online_training &&
            db.size() >= 16) {
            if (async_trainer != nullptr) {
                async_trainer->beginUpdate(db.recentWindow(768),
                                           opts.train_epochs);
            } else {
                model_->train(db.recentWindow(768), opts.train_epochs);
            }
            // Charged where synchronous training would pay it, so async
            // mode never changes the simulated clock.
            clock.charge(CostCategory::Training,
                         model_->trainCostPerRound());
        }

        const double e2e = workloadBest(workload, db);
        if (std::isfinite(e2e)) {
            result.curve.push_back({clock.now(), e2e});
        }
    }
    // Drain the last in-flight update before the divergence probe and the
    // checkpoint: both must see the final weights.
    if (async_trainer != nullptr) {
        async_trainer->install();
    }

    result.best_per_task.reserve(workload.tasks.size());
    for (const auto& inst : workload.tasks) {
        result.best_per_task.push_back(db.bestLatency(inst.task));
    }
    result.final_latency = workloadBest(workload, db);
    result.total_time_s = clock.now();
    result.exploration_s = clock.total(CostCategory::Exploration);
    result.training_s = clock.total(CostCategory::Training);
    result.measurement_s = clock.total(CostCategory::Measurement);
    result.compile_s = clock.total(CostCategory::Compile);
    result.trials = measurer.totalTrials();
    result.failed_trials = measurer.failedTrials();
    result.cache_hits = measurer.cacheHits();
    result.simulated_trials = measurer.simulatedTrials();
    result.injected_faults = measurer.injectedFaults();

    // A learned model that diverged (non-finite scores) means the policy
    // lost its search signal — the paper observes this for TLP fine-tuned
    // on small data ("the tuning curve disappears").
    const Schedule probe_sch =
        ScheduleSampler(workload.tasks[0].task, device_).sample(rng);
    const auto probe = model_->predict(
        workload.tasks[0].task, std::span<const Schedule>(&probe_sch, 1));
    if (!probe.empty() && !std::isfinite(probe[0])) {
        result.failed = true;
        result.failure_reason = "cost model diverged";
    }
    // Checkpoint only after the divergence probe: a poisoned model must
    // not be persisted where the next warm-started run would restore it.
    artifacts.finish(opts.measure_cache ? &env.cache() : nullptr,
                     opts.reuse_model_checkpoint && !result.failed
                         ? model_.get()
                         : nullptr,
                     model_key);
    if (opts.recorder != nullptr) {
        opts.recorder->onEnd(result, paramsHash(model_->getParams()));
    }
    return result;
}

} // namespace pruner
