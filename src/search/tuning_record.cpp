#include "search/tuning_record.hpp"

#include <cmath>
#include <limits>

#include "support/logging.hpp"

namespace pruner {

namespace {

uint64_t
pairKey(const SubgraphTask& task, const Schedule& sch)
{
    return hashCombine(task.hash(), sch.hash());
}

} // namespace

void
TuningRecordDb::add(MeasuredRecord record)
{
    PRUNER_CHECK_MSG(std::isfinite(record.latency) && record.latency > 0.0,
                     "records must hold successful measurements");
    const uint64_t task_key = record.task.hash();
    ++count_[task_key];
    seen_pairs_[pairKey(record.task, record.sch)] = 1;
    auto it = best_.find(task_key);
    if (it == best_.end() || record.latency < it->second.latency) {
        best_[task_key] = {record.latency, records_.size()};
    }
    records_.push_back(std::move(record));
}

size_t
TuningRecordDb::countForTask(const SubgraphTask& task) const
{
    auto it = count_.find(task.hash());
    return it == count_.end() ? 0 : it->second;
}

double
TuningRecordDb::bestLatency(const SubgraphTask& task) const
{
    auto it = best_.find(task.hash());
    return it == best_.end() ? std::numeric_limits<double>::infinity()
                             : it->second.latency;
}

const Schedule*
TuningRecordDb::bestSchedule(const SubgraphTask& task) const
{
    auto it = best_.find(task.hash());
    if (it == best_.end()) {
        return nullptr;
    }
    return &records_[it->second.record_index].sch;
}

double
TuningRecordDb::bestLatencyBefore(const SubgraphTask& task,
                                  size_t upto) const
{
    const uint64_t key = task.hash();
    double best = std::numeric_limits<double>::infinity();
    const size_t n = std::min(upto, records_.size());
    for (size_t i = 0; i < n; ++i) {
        if (records_[i].task.hash() == key) {
            best = std::min(best, records_[i].latency);
        }
    }
    return best;
}

bool
TuningRecordDb::measured(const SubgraphTask& task, const Schedule& sch) const
{
    return seen_pairs_.contains(pairKey(task, sch));
}

std::vector<MeasuredRecord>
TuningRecordDb::recentWindow(size_t n) const
{
    const size_t start = records_.size() > n ? records_.size() - n : 0;
    return {records_.begin() + static_cast<ptrdiff_t>(start),
            records_.end()};
}

} // namespace pruner
