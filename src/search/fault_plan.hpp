#pragma once

/**
 * @file fault_plan.hpp
 * Deterministic measurement-fault injection for the verify stage.
 *
 * Production tuning fleets see three failure shapes the simulator's
 * resource-limit launch failures cannot model: device-side timeouts,
 * transiently flaky latencies (thermal noise, co-tenant interference), and
 * hosts whose compiled kernels fail to launch for reasons unrelated to the
 * schedule. A FaultPlan injects all three into a Measurer as a pure
 * function of (plan seed, task hash, schedule hash, attempt), so the fault
 * stream is bit-identical at any worker count, independent of batch
 * composition, and fully replayable from a recorded session log
 * (src/replay).
 *
 * Fault semantics:
 *  - LaunchFailure: permanent for a (task, schedule) pair — derived
 *    without the attempt index, mirroring a schedule the target toolchain
 *    cannot build. Returns +inf and may be cached like a natural launch
 *    failure.
 *  - Timeout: transient — derived per attempt. Returns +inf, charges
 *    timeout_extra_s of extra simulated measurement time, and must never
 *    enter the MeasureCache (a revisit re-measures and may succeed).
 *  - FlakyLatency: transient — the finite measurement is scaled by a
 *    lognormal factor drawn per attempt. Never cached, so a revisit
 *    re-measures clean.
 */

#include <cstdint>

namespace pruner {

/** Outcome class of one simulated measurement attempt. */
enum class FaultKind : uint8_t {
    None = 0,          ///< no fault injected (natural outcome)
    LaunchFailure = 1, ///< injected permanent launch failure (+inf)
    Timeout = 2,       ///< injected transient timeout (+inf)
    FlakyLatency = 3,  ///< injected transient latency perturbation
};

/** Human-readable fault-kind name ("none", "launch", "timeout", "flaky"). */
const char* faultKindName(FaultKind kind);

/** Deterministic per-candidate fault-injection plan for a Measurer. */
struct FaultPlan
{
    /** Probability a (task, schedule) pair permanently fails to launch. */
    double launch_failure_rate = 0.0;
    /** Per-attempt probability of a measurement timeout. */
    double timeout_rate = 0.0;
    /** Per-attempt probability of a flaky (perturbed) latency. */
    double flaky_rate = 0.0;
    /** Lognormal sigma of the flaky perturbation factor. */
    double flaky_sigma = 0.25;
    /** Extra simulated seconds a timed-out trial blocks the device for. */
    double timeout_extra_s = 10.0;
    /** Root of the fault stream; independent of the measurement seed. */
    uint64_t seed = 0;

    /** True when any fault can fire. */
    bool enabled() const
    {
        return launch_failure_rate > 0.0 || timeout_rate > 0.0 ||
               flaky_rate > 0.0;
    }

    /**
     * Draw the fault for one simulated attempt. Pure: depends only on the
     * plan and the arguments, so the result is identical for any worker
     * count and any batch composition. @p attempt counts prior simulated
     * attempts of the same (task, schedule) pair on this measurer (cache
     * hits and in-batch duplicates do not advance it). When the result is
     * FlakyLatency, @p flaky_scale receives the multiplicative factor.
     */
    FaultKind draw(uint64_t task_hash, uint64_t sched_hash, uint32_t attempt,
                   double* flaky_scale) const;
};

} // namespace pruner
