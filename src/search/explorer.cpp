#include "search/explorer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cost/cost_model.hpp"
#include "cost/gbt_model.hpp"
#include "obs/metrics.hpp"
#include "support/logging.hpp"

namespace pruner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Checkpoint-blob helpers: space-separated printable tokens, doubles as
// 16-hex IEEE-754 bit patterns (bit-exact round trip, the session-log
// convention).

std::string
hexU64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
hexDouble(double v)
{
    return hexU64(std::bit_cast<uint64_t>(v));
}

/** Cursor-based reader over a serializeState() blob. */
class BlobReader
{
  public:
    explicit BlobReader(const std::string& blob) : blob_(blob) {}

    /** Next space-delimited token; FatalError at end of blob. */
    std::string
    token()
    {
        while (pos_ < blob_.size() && blob_[pos_] == ' ') {
            ++pos_;
        }
        PRUNER_CHECK_MSG(pos_ < blob_.size(),
                         "truncated explorer state blob");
        const size_t start = pos_;
        while (pos_ < blob_.size() && blob_[pos_] != ' ') {
            ++pos_;
        }
        return blob_.substr(start, pos_ - start);
    }

    uint64_t
    u64()
    {
        const std::string t = token();
        PRUNER_CHECK_MSG(!t.empty() && t.size() <= 16,
                         "bad u64 token in explorer state blob");
        uint64_t v = 0;
        for (const char c : t) {
            int digit;
            if (c >= '0' && c <= '9') {
                digit = c - '0';
            } else if (c >= 'a' && c <= 'f') {
                digit = c - 'a' + 10;
            } else {
                PRUNER_FATAL("bad hex digit in explorer state blob");
            }
            v = (v << 4) | static_cast<uint64_t>(digit);
        }
        return v;
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    /** Exactly @p n raw bytes (after one separating space). */
    std::string
    bytes(size_t n)
    {
        PRUNER_CHECK_MSG(pos_ < blob_.size() && blob_[pos_] == ' ',
                         "truncated explorer state blob");
        ++pos_;
        PRUNER_CHECK_MSG(pos_ + n <= blob_.size(),
                         "truncated explorer state blob");
        const size_t start = pos_;
        pos_ += n;
        return blob_.substr(start, n);
    }

    bool
    atEnd()
    {
        while (pos_ < blob_.size() && blob_[pos_] == ' ') {
            ++pos_;
        }
        return pos_ >= blob_.size();
    }

  private:
    const std::string& blob_;
    size_t pos_ = 0;
};

} // namespace

// ---------------------------------------------------------------------------
// ExplorerSpec
// ---------------------------------------------------------------------------

ExplorerSpec::ExplorerSpec(std::string key, const std::string& config)
    : key_(std::move(key)), config_(config)
{
    PRUNER_CHECK_MSG(config.find('\t') == std::string::npos &&
                         config.find('\n') == std::string::npos,
                     "explorer config must not contain tabs or newlines "
                     "(it is recorded as one session-log field)");
    size_t pos = 0;
    while (pos < config.size()) {
        size_t comma = config.find(',', pos);
        if (comma == std::string::npos) {
            comma = config.size();
        }
        const std::string pair = config.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty()) {
            continue;
        }
        const size_t eq = pair.find('=');
        PRUNER_CHECK_MSG(eq != std::string::npos && eq > 0,
                         "malformed explorer config pair '"
                             << pair << "' (expected key=value)");
        pairs_.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
}

bool
ExplorerSpec::has(const std::string& name) const
{
    for (const auto& [k, v] : pairs_) {
        if (k == name) {
            return true;
        }
    }
    return false;
}

std::string
ExplorerSpec::get(const std::string& name, const std::string& fallback) const
{
    // Last occurrence wins, so a portfolio config can override a shared
    // default by appending.
    std::string out = fallback;
    for (const auto& [k, v] : pairs_) {
        if (k == name) {
            out = v;
        }
    }
    return out;
}

int64_t
ExplorerSpec::getInt(const std::string& name, int64_t fallback) const
{
    if (!has(name)) {
        return fallback;
    }
    return std::stoll(get(name, ""));
}

double
ExplorerSpec::getDouble(const std::string& name, double fallback) const
{
    if (!has(name)) {
        return fallback;
    }
    return std::stod(get(name, ""));
}

// ---------------------------------------------------------------------------
// Explorer base: accounting wrappers around the strategy hooks
// ---------------------------------------------------------------------------

std::vector<ScoredSchedule>
Explorer::proposeBatch(ExplorerContext& ctx)
{
    PRUNER_CHECK(ctx.task != nullptr && ctx.device != nullptr &&
                 ctx.seeds != nullptr && ctx.rng != nullptr);
    size_t evals = 0;
    size_t* caller_out = ctx.n_evaluated;
    ctx.n_evaluated = &evals;
    std::vector<ScoredSchedule> out = propose(ctx);
    ctx.n_evaluated = caller_out;
    if (caller_out != nullptr) {
        *caller_out = evals;
    }
    if (metrics_ != nullptr) {
        metrics_->counter("explorer_" + key() + "_proposals_total")->add();
        metrics_->counter("explorer_" + key() + "_candidates_total")
            ->add(out.size());
        metrics_->counter("explorer_" + key() + "_evaluations_total")
            ->add(evals);
    }
    return out;
}

void
Explorer::observe(const SubgraphTask& task, const DeviceSpec& device,
                  std::span<const Schedule> measured,
                  std::span<const double> latencies)
{
    PRUNER_CHECK(measured.size() == latencies.size());
    if (metrics_ != nullptr) {
        metrics_->counter("explorer_" + key() + "_observed_total")
            ->add(measured.size());
    }
    onObserve(task, device, measured, latencies);
}

void
Explorer::onObserve(const SubgraphTask&, const DeviceSpec&,
                    std::span<const Schedule>, std::span<const double>)
{
}

namespace {

// ---------------------------------------------------------------------------
// evolution: the default, byte-identical to the pre-interface draft loop
// ---------------------------------------------------------------------------

/** Wraps EvolutionarySearch verbatim: same construction, same run() call,
 *  same RNG consumption as the three pre-refactor call sites, so the
 *  default explorer reproduces their outputs bit for bit (asserted
 *  against frozen golden sessions in tests/test_explorer.cpp). */
class EvolutionExplorer final : public Explorer
{
  public:
    using Explorer::Explorer;

    std::unique_ptr<Explorer>
    clone() const override
    {
        return std::make_unique<EvolutionExplorer>(*this);
    }

  protected:
    std::vector<ScoredSchedule>
    propose(ExplorerContext& ctx) override
    {
        EvolutionarySearch evo(*ctx.task, *ctx.device);
        return evo.run(ctx.evo, ctx.score, *ctx.seeds, *ctx.rng,
                       ctx.n_evaluated);
    }
};

// ---------------------------------------------------------------------------
// bayes: deterministic Bayesian optimization over the tiling space
// ---------------------------------------------------------------------------

/** Flatten a schedule into log2 knob space (tile factors are powers-ish
 *  of two, so log2 distances weight a 2x factor change evenly at every
 *  tile level). */
void
knobVector(const Schedule& sch, std::vector<double>& out)
{
    out.clear();
    for (const SpatialSplit& sp : sch.spatial()) {
        for (const int64_t f : sp.f) {
            out.push_back(std::log2(static_cast<double>(f)));
        }
    }
    for (const ReductionSplit& rd : sch.reduction()) {
        for (const int64_t f : rd.f) {
            out.push_back(std::log2(static_cast<double>(f)));
        }
    }
    out.push_back(std::log2(1.0 + static_cast<double>(sch.unroll())));
    out.push_back(std::log2(static_cast<double>(sch.vectorLen())));
    out.push_back(sch.cacheShared() ? 1.0 : 0.0);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalPdf(double z)
{
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.141592653589793);
}

/**
 * Deterministic Bayesian optimization: the resident draft fitness
 * (ctx.score — PaCM/SA/the baseline's model) is the surrogate mean; the
 * posterior over an unevaluated candidate is a distance-weighted k-NN
 * estimate over the points evaluated so far, with an uncertainty that
 * grows with the candidate's log2-knob distance to the evaluated set.
 * Each iteration generates a wide structural pool (mutants of the
 * incumbent evaluated set + fresh samples), ranks it by expected
 * improvement over the best evaluated score, and spends surrogate
 * evaluations only on the top-EI slice — the acquisition decides where
 * the per-round budget (population x (iterations + 1), matching the
 * evolutionary draft) goes. Measured feedback arrives through observe():
 * the per-task measured incumbent joins the next call's initial design.
 */
class BayesExplorer final : public Explorer
{
  public:
    explicit BayesExplorer(const ExplorerSpec& spec)
        : Explorer(spec),
          topk_(static_cast<size_t>(spec.getInt("topk", 8))),
          sigma_rel_(spec.getDouble("sigma", 0.25)),
          knn_(static_cast<size_t>(spec.getInt("knn", 3)))
    {
        PRUNER_CHECK(topk_ > 0 && knn_ > 0 && sigma_rel_ >= 0.0);
    }

    std::unique_ptr<Explorer>
    clone() const override
    {
        return std::make_unique<BayesExplorer>(*this);
    }

    std::string
    serializeState() const override
    {
        std::vector<std::pair<uint64_t, const Incumbent*>> sorted;
        sorted.reserve(incumbents_.size());
        for (const auto& [hash, inc] : incumbents_) {
            sorted.emplace_back(hash, &inc);
        }
        std::sort(sorted.begin(), sorted.end());
        std::ostringstream out;
        out << "bayes1 " << hexU64(sorted.size());
        for (const auto& [hash, inc] : sorted) {
            const std::string sch = inc->sch.serialize();
            out << ' ' << hexU64(hash) << ' ' << hexDouble(inc->latency)
                << ' ' << hexU64(sch.size()) << ' ' << sch;
        }
        return out.str();
    }

    void
    restoreState(const std::string& blob) override
    {
        incumbents_.clear();
        if (blob.empty()) {
            return;
        }
        BlobReader in(blob);
        PRUNER_CHECK_MSG(in.token() == "bayes1",
                         "not a bayes explorer state blob");
        const uint64_t n = in.u64();
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t hash = in.u64();
            Incumbent inc;
            inc.latency = in.f64();
            inc.sch = Schedule::deserialize(in.bytes(in.u64()));
            incumbents_.emplace(hash, std::move(inc));
        }
    }

  protected:
    std::vector<ScoredSchedule>
    propose(ExplorerContext& ctx) override
    {
        const SubgraphTask& task = *ctx.task;
        const ScheduleSampler sampler(task, *ctx.device);
        const ScheduleMutator mutator(task, *ctx.device);
        Rng& rng = *ctx.rng;
        const size_t pop = std::max<size_t>(ctx.evo.population, 1);
        size_t evals = 0;

        struct Evaluated
        {
            Schedule sch;
            uint64_t hash;
            double mu;
            std::vector<double> knobs;
        };
        std::vector<Evaluated> evaluated;
        std::unordered_set<uint64_t> seen;
        std::vector<double> knob_scratch;

        auto evaluate = [&](std::vector<Schedule>& batch) {
            if (batch.empty()) {
                return;
            }
            const std::vector<double> mu =
                scoreChunked(ctx.score, batch, ctx.evo.score_pool,
                             ctx.evo.score_chunk);
            evals += batch.size();
            for (size_t i = 0; i < batch.size(); ++i) {
                knobVector(batch[i], knob_scratch);
                const uint64_t h = batch[i].hash();
                evaluated.push_back(
                    {std::move(batch[i]), h, mu[i], knob_scratch});
            }
            batch.clear();
        };

        // Initial design: incumbents (caller seeds + the measured best
        // this explorer observed) then random space-filling samples.
        std::vector<Schedule> init;
        auto try_seed = [&](const Schedule& sch) {
            Schedule copy = sch;
            if (!sampler.repair(copy)) {
                return;
            }
            if (!seen.insert(copy.hash()).second) {
                return;
            }
            init.push_back(std::move(copy));
        };
        for (const Schedule& seed : *ctx.seeds) {
            try_seed(seed);
        }
        if (const auto it = incumbents_.find(task.hash());
            it != incumbents_.end()) {
            try_seed(it->second.sch);
        }
        for (Schedule& sch : sampler.sampleMany(rng, pop - std::min(
                                                          pop, init.size()))) {
            if (seen.insert(sch.hash()).second) {
                init.push_back(std::move(sch));
            }
        }
        evaluate(init);

        const size_t dim =
            evaluated.empty() ? 1 : evaluated.front().knobs.size();
        for (int iter = 0; iter < ctx.evo.iterations; ++iter) {
            if (evaluated.empty()) {
                break;
            }
            // Incumbent statistics of the evaluated set.
            double best_mu = -kInf;
            double worst_mu = kInf;
            for (const Evaluated& e : evaluated) {
                best_mu = std::max(best_mu, e.mu);
                worst_mu = std::min(worst_mu, e.mu);
            }
            const double spread = std::max(best_mu - worst_mu, 1e-12);

            // Structural proposals: mutants of the current top-mu set
            // plus fresh random samples (exploration floor).
            std::vector<size_t> order(evaluated.size());
            for (size_t i = 0; i < order.size(); ++i) {
                order[i] = i;
            }
            std::sort(order.begin(), order.end(),
                      [&](size_t a, size_t b) {
                          if (evaluated[a].mu != evaluated[b].mu) {
                              return evaluated[a].mu > evaluated[b].mu;
                          }
                          return evaluated[a].hash < evaluated[b].hash;
                      });
            const size_t n_parents = std::min(topk_, order.size());
            const size_t branch = std::max<size_t>(1, 2 * pop / topk_);
            std::vector<Schedule> pool;
            std::unordered_set<uint64_t> in_pool;
            auto try_pool = [&](Schedule&& sch) {
                const uint64_t h = sch.hash();
                if (seen.count(h) != 0 || !in_pool.insert(h).second) {
                    return;
                }
                pool.push_back(std::move(sch));
            };
            for (size_t p = 0; p < n_parents; ++p) {
                const Schedule& parent = evaluated[order[p]].sch;
                for (size_t b = 0; b < branch; ++b) {
                    try_pool(mutator.mutate(parent, rng));
                }
            }
            for (Schedule& sch : sampler.sampleMany(rng, pop / 4)) {
                try_pool(std::move(sch));
            }
            if (pool.empty()) {
                break; // space exhausted around the incumbents
            }

            // Acquisition: EI from the k-NN posterior (no surrogate
            // calls yet — the surrogate budget is spent only on the
            // selected slice below).
            struct Scored
            {
                size_t index;
                uint64_t hash;
                double ei;
            };
            std::vector<Scored> acquisition;
            acquisition.reserve(pool.size());
            std::vector<std::pair<double, double>> nearest; // (d2, mu)
            for (size_t i = 0; i < pool.size(); ++i) {
                knobVector(pool[i], knob_scratch);
                nearest.clear();
                double min_d2 = kInf;
                for (const Evaluated& e : evaluated) {
                    double d2 = 0.0;
                    for (size_t j = 0; j < knob_scratch.size(); ++j) {
                        const double d = knob_scratch[j] - e.knobs[j];
                        d2 += d * d;
                    }
                    min_d2 = std::min(min_d2, d2);
                    nearest.emplace_back(d2, e.mu);
                    std::push_heap(nearest.begin(), nearest.end());
                    if (nearest.size() > knn_) {
                        std::pop_heap(nearest.begin(), nearest.end());
                        nearest.pop_back();
                    }
                }
                double wsum = 0.0;
                double musum = 0.0;
                for (const auto& [d2, mu] : nearest) {
                    const double w = 1.0 / (d2 + 1e-9);
                    wsum += w;
                    musum += w * mu;
                }
                const double mean = musum / wsum;
                const double novelty = std::min(
                    1.0,
                    std::sqrt(min_d2 / static_cast<double>(dim)));
                const double sigma = sigma_rel_ * spread * novelty;
                double ei;
                if (sigma <= 0.0) {
                    ei = std::max(0.0, mean - best_mu);
                } else {
                    const double z = (mean - best_mu) / sigma;
                    ei = (mean - best_mu) * normalCdf(z) +
                         sigma * normalPdf(z);
                }
                acquisition.push_back({i, pool[i].hash(), ei});
            }
            std::sort(acquisition.begin(), acquisition.end(),
                      [](const Scored& a, const Scored& b) {
                          if (a.ei != b.ei) {
                              return a.ei > b.ei;
                          }
                          return a.hash < b.hash; // deterministic ties
                      });

            std::vector<Schedule> chosen;
            chosen.reserve(std::min(pop, acquisition.size()));
            for (size_t i = 0; i < acquisition.size() && chosen.size() < pop;
                 ++i) {
                Schedule& sch = pool[acquisition[i].index];
                seen.insert(acquisition[i].hash);
                chosen.push_back(std::move(sch));
            }
            evaluate(chosen);
        }

        // The verify stage wants the surrogate's ranking, best first.
        std::sort(evaluated.begin(), evaluated.end(),
                  [](const Evaluated& a, const Evaluated& b) {
                      if (a.mu != b.mu) {
                          return a.mu > b.mu;
                      }
                      return a.hash < b.hash;
                  });
        std::vector<ScoredSchedule> out;
        out.reserve(std::min(evaluated.size(), ctx.evo.out_size));
        for (Evaluated& e : evaluated) {
            if (out.size() >= ctx.evo.out_size) {
                break;
            }
            out.push_back({std::move(e.sch), e.mu});
        }
        if (ctx.n_evaluated != nullptr) {
            *ctx.n_evaluated = evals;
        }
        return out;
    }

    void
    onObserve(const SubgraphTask& task, const DeviceSpec&,
              std::span<const Schedule> measured,
              std::span<const double> latencies) override
    {
        Incumbent& inc = incumbents_[task.hash()];
        for (size_t i = 0; i < measured.size(); ++i) {
            if (std::isfinite(latencies[i]) &&
                latencies[i] < inc.latency) {
                inc.latency = latencies[i];
                inc.sch = measured[i];
            }
        }
    }

  private:
    struct Incumbent
    {
        Schedule sch;
        double latency = kInf;
    };

    size_t topk_;
    double sigma_rel_;
    size_t knn_;
    /** Per-task measured incumbent (keyed by task hash). */
    std::unordered_map<uint64_t, Incumbent> incumbents_;
};

// ---------------------------------------------------------------------------
// gbt: boosted-trees surrogate trained online from measured records
// ---------------------------------------------------------------------------

/**
 * Runs the evolutionary walk but scores it with a gradient-boosted-trees
 * surrogate refit online from the measured records observe() delivers
 * (target -log(latency), features from the batched extractors). Until
 * min_records measurements exist the resident fitness (ctx.score) drafts
 * as usual, so early rounds are never worse than the default. The GA's
 * RNG consumption is identical either way — only the fitness values
 * differ — keeping the explorer deterministic at any worker count.
 */
class GbtExplorer final : public Explorer
{
  public:
    explicit GbtExplorer(const ExplorerSpec& spec)
        : Explorer(spec),
          window_(static_cast<size_t>(spec.getInt("window", 1024))),
          min_records_(static_cast<size_t>(spec.getInt("min_records", 48)))
    {
        GbtConfig config;
        config.n_trees = static_cast<int>(
            spec.getInt("trees", config.n_trees));
        config.max_depth = static_cast<int>(
            spec.getInt("depth", config.max_depth));
        config.learning_rate =
            spec.getDouble("lr", config.learning_rate);
        config.min_leaf = static_cast<size_t>(
            spec.getInt("min_leaf", static_cast<int64_t>(config.min_leaf)));
        model_ = GbtModel(config);
        PRUNER_CHECK(window_ >= min_records_ && min_records_ > 0);
    }

    std::unique_ptr<Explorer>
    clone() const override
    {
        return std::make_unique<GbtExplorer>(*this);
    }

    std::string
    serializeState() const override
    {
        // The fitted trees are a deterministic pure function of the
        // training window, so only the window persists; restore marks the
        // model dirty and the next propose refits to identical trees.
        std::ostringstream out;
        out << "gbt1 " << hexU64(targets_.size());
        for (const double t : targets_) {
            out << ' ' << hexDouble(t);
        }
        for (size_t r = 0; r < features_.rows(); ++r) {
            const double* row = features_.row(r);
            for (size_t c = 0; c < features_.cols(); ++c) {
                out << ' ' << hexDouble(row[c]);
            }
        }
        return out.str();
    }

    void
    restoreState(const std::string& blob) override
    {
        features_ = Matrix(0, kGbtFeatureDim);
        targets_.clear();
        dirty_ = false;
        if (blob.empty()) {
            return;
        }
        BlobReader in(blob);
        PRUNER_CHECK_MSG(in.token() == "gbt1",
                         "not a gbt explorer state blob");
        const uint64_t n = in.u64();
        targets_.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            targets_.push_back(in.f64());
        }
        features_.resize(n, kGbtFeatureDim);
        for (uint64_t r = 0; r < n; ++r) {
            double* row = features_.row(r);
            for (size_t c = 0; c < kGbtFeatureDim; ++c) {
                row[c] = in.f64();
            }
        }
        dirty_ = !targets_.empty();
    }

  protected:
    std::vector<ScoredSchedule>
    propose(ExplorerContext& ctx) override
    {
        ScoreFn fitness = ctx.score;
        if (targets_.size() >= min_records_) {
            if (dirty_) {
                model_.fit(features_, targets_);
                dirty_ = false;
            }
            const SubgraphTask* task = ctx.task;
            const DeviceSpec* device = ctx.device;
            const GbtModel* model = &model_;
            fitness = [task, device,
                       model](std::span<const Schedule> cands) {
                Matrix feats;
                extractGbtFeatures(*task, cands, *device, feats);
                std::vector<double> scores;
                model->predictBatch(feats, scores);
                return scores;
            };
        }
        EvolutionarySearch evo(*ctx.task, *ctx.device);
        return evo.run(ctx.evo, fitness, *ctx.seeds, *ctx.rng,
                       ctx.n_evaluated);
    }

    void
    onObserve(const SubgraphTask& task, const DeviceSpec& device,
              std::span<const Schedule> measured,
              std::span<const double> latencies) override
    {
        std::vector<Schedule> kept;
        std::vector<double> y;
        for (size_t i = 0; i < measured.size(); ++i) {
            if (std::isfinite(latencies[i]) && latencies[i] > 0.0) {
                kept.push_back(measured[i]);
                y.push_back(-std::log(latencies[i]));
            }
        }
        if (kept.empty()) {
            return;
        }
        Matrix feats;
        extractGbtFeatures(task, kept, device, feats);
        for (size_t i = 0; i < kept.size(); ++i) {
            features_.appendRows(feats, i, 1);
            targets_.push_back(y[i]);
        }
        if (targets_.size() > window_) {
            // Drop the oldest rows (sliding training window).
            const size_t drop = targets_.size() - window_;
            const Matrix tail =
                features_.sliceRows(drop, targets_.size() - drop);
            features_ = tail;
            targets_.erase(targets_.begin(),
                           targets_.begin() + static_cast<ptrdiff_t>(drop));
        }
        dirty_ = true;
    }

  private:
    size_t window_;
    size_t min_records_;
    GbtModel model_;
    Matrix features_{0, kGbtFeatureDim};
    std::vector<double> targets_;
    bool dirty_ = false;
};

// ---------------------------------------------------------------------------
// portfolio: race registered explorers per task, commit to the winner
// ---------------------------------------------------------------------------

/**
 * Meta-explorer racing its arms on the shared per-round trial budget:
 * each draft call for a task goes to exactly one arm (round-robin,
 * race_rounds consecutive calls per arm), so racing splits a task's
 * budget across strategies instead of multiplying trials. After every
 * arm had its race window the portfolio commits to the arm with the best
 * measured latency and routes all further drafts to it. While the race
 * runs, TaskScheduler's gain ranking does the inter-task arbitration it
 * always does: tasks whose current arm improves keep earning rounds, so
 * a strong arm pulls budget toward its task naturally.
 */
class PortfolioExplorer final : public Explorer
{
  public:
    PortfolioExplorer(const ExplorerSpec& spec,
                      const ExplorerRegistry& registry)
        : Explorer(spec),
          race_rounds_(
              static_cast<size_t>(spec.getInt("race_rounds", 2)))
    {
        PRUNER_CHECK(race_rounds_ > 0);
        const std::string arms = spec.get("arms", "evolution+bayes+gbt");
        size_t pos = 0;
        while (pos <= arms.size()) {
            size_t sep = arms.find('+', pos);
            if (sep == std::string::npos) {
                sep = arms.size();
            }
            const std::string arm = arms.substr(pos, sep - pos);
            pos = sep + 1;
            if (arm.empty()) {
                continue;
            }
            PRUNER_CHECK_MSG(arm != "portfolio",
                             "portfolio arms cannot nest portfolios");
            arms_.push_back(registry.make(arm, spec.config()));
        }
        PRUNER_CHECK_MSG(!arms_.empty(),
                         "portfolio needs at least one arm "
                         "(arms=evolution+bayes+gbt)");
    }

    PortfolioExplorer(const PortfolioExplorer& other)
        : Explorer(other),
          race_rounds_(other.race_rounds_),
          state_(other.state_)
    {
        arms_.reserve(other.arms_.size());
        for (const auto& arm : other.arms_) {
            arms_.push_back(arm->clone());
        }
    }

    std::unique_ptr<Explorer>
    clone() const override
    {
        return std::make_unique<PortfolioExplorer>(*this);
    }

    std::string
    serializeState() const override
    {
        std::vector<std::pair<uint64_t, const TaskState*>> sorted;
        sorted.reserve(state_.size());
        for (const auto& [hash, st] : state_) {
            sorted.emplace_back(hash, &st);
        }
        std::sort(sorted.begin(), sorted.end());
        std::ostringstream out;
        out << "portfolio1 " << hexU64(arms_.size()) << ' '
            << hexU64(sorted.size());
        for (const auto& [hash, st] : sorted) {
            out << ' ' << hexU64(hash) << ' ' << hexU64(st->calls) << ' '
                << hexU64(st->last_arm) << ' ' << hexU64(st->winner);
            for (size_t a = 0; a < arms_.size(); ++a) {
                out << ' '
                    << hexDouble(a < st->best.size() ? st->best[a] : kInf);
            }
        }
        // Nested arm blobs, length-prefixed (they contain spaces).
        for (const auto& arm : arms_) {
            const std::string nested = arm->serializeState();
            out << ' ' << hexU64(nested.size()) << ' ' << nested;
        }
        return out.str();
    }

    void
    restoreState(const std::string& blob) override
    {
        state_.clear();
        if (blob.empty()) {
            return;
        }
        BlobReader in(blob);
        PRUNER_CHECK_MSG(in.token() == "portfolio1",
                         "not a portfolio explorer state blob");
        PRUNER_CHECK_MSG(in.u64() == arms_.size(),
                         "portfolio state blob has a different arm count");
        const uint64_t n = in.u64();
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t hash = in.u64();
            TaskState st;
            st.calls = static_cast<size_t>(in.u64());
            st.last_arm = static_cast<size_t>(in.u64());
            st.winner = static_cast<size_t>(in.u64());
            st.best.reserve(arms_.size());
            for (size_t a = 0; a < arms_.size(); ++a) {
                st.best.push_back(in.f64());
            }
            state_.emplace(hash, std::move(st));
        }
        for (const auto& arm : arms_) {
            arm->restoreState(in.bytes(in.u64()));
        }
    }

    void
    bindMetrics(obs::MetricsRegistry* metrics) override
    {
        Explorer::bindMetrics(metrics);
        for (const auto& arm : arms_) {
            arm->bindMetrics(metrics);
        }
    }

  protected:
    std::vector<ScoredSchedule>
    propose(ExplorerContext& ctx) override
    {
        TaskState& st = stateFor(ctx.task->hash());
        size_t arm;
        if (st.winner != kNoArm) {
            arm = st.winner;
        } else if (st.calls < arms_.size() * race_rounds_) {
            arm = st.calls / race_rounds_; // race phase: rotate arms
        } else {
            st.winner = pickWinner(st);
            arm = st.winner;
            if (metrics_ != nullptr) {
                metrics_
                    ->counter("portfolio_winner_" + arms_[arm]->key() +
                              "_total")
                    ->add();
            }
        }
        st.last_arm = arm;
        ++st.calls;
        if (metrics_ != nullptr) {
            metrics_
                ->counter("portfolio_arm_" + arms_[arm]->key() +
                          "_calls_total")
                ->add();
        }
        return arms_[arm]->proposeBatch(ctx);
    }

    void
    onObserve(const SubgraphTask& task, const DeviceSpec& device,
              std::span<const Schedule> measured,
              std::span<const double> latencies) override
    {
        TaskState& st = stateFor(task.hash());
        if (st.last_arm == kNoArm) {
            // Warm-started records predate the race: shared knowledge,
            // credited to no arm.
            for (const auto& arm : arms_) {
                arm->observe(task, device, measured, latencies);
            }
            return;
        }
        double& best = st.best[st.last_arm];
        for (const double latency : latencies) {
            if (std::isfinite(latency)) {
                best = std::min(best, latency);
            }
        }
        arms_[st.last_arm]->observe(task, device, measured, latencies);
    }

  private:
    static constexpr size_t kNoArm = static_cast<size_t>(-1);

    struct TaskState
    {
        size_t calls = 0;
        size_t last_arm = kNoArm;
        size_t winner = kNoArm;
        std::vector<double> best; ///< best measured latency per arm
    };

    TaskState&
    stateFor(uint64_t task_hash)
    {
        TaskState& st = state_[task_hash];
        if (st.best.empty()) {
            st.best.assign(arms_.size(), kInf);
        }
        return st;
    }

    size_t
    pickWinner(const TaskState& st) const
    {
        size_t winner = 0;
        for (size_t a = 1; a < arms_.size(); ++a) {
            if (st.best[a] < st.best[winner]) {
                winner = a; // strict <: ties keep the earliest arm
            }
        }
        return winner;
    }

    size_t race_rounds_;
    std::vector<std::unique_ptr<Explorer>> arms_;
    std::unordered_map<uint64_t, TaskState> state_;
};

} // namespace

void
observeWarmRecords(Explorer& explorer, const DeviceSpec& device,
                   const std::vector<MeasuredRecord>& records)
{
    size_t i = 0;
    while (i < records.size()) {
        const uint64_t task_hash = records[i].task.hash();
        std::vector<Schedule> schs;
        std::vector<double> lats;
        size_t j = i;
        while (j < records.size() &&
               records[j].task.hash() == task_hash) {
            schs.push_back(records[j].sch);
            lats.push_back(records[j].latency);
            ++j;
        }
        explorer.observe(records[i].task, device, schs, lats);
        i = j;
    }
}

// ---------------------------------------------------------------------------
// ExplorerRegistry
// ---------------------------------------------------------------------------

ExplorerRegistry::ExplorerRegistry()
{
    factories_["evolution"] = [](const ExplorerSpec& spec) {
        return std::make_unique<EvolutionExplorer>(spec);
    };
    factories_["bayes"] = [](const ExplorerSpec& spec) {
        return std::make_unique<BayesExplorer>(spec);
    };
    factories_["gbt"] = [](const ExplorerSpec& spec) {
        return std::make_unique<GbtExplorer>(spec);
    };
    factories_["portfolio"] = [](const ExplorerSpec& spec) {
        return std::make_unique<PortfolioExplorer>(spec,
                                                   instance());
    };
}

ExplorerRegistry&
ExplorerRegistry::instance()
{
    static ExplorerRegistry registry;
    return registry;
}

void
ExplorerRegistry::registerFactory(const std::string& key, Factory factory)
{
    PRUNER_CHECK(!key.empty() && factory != nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    factories_[key] = std::move(factory);
}

std::unique_ptr<Explorer>
ExplorerRegistry::make(const std::string& key,
                       const std::string& config) const
{
    const std::string resolved = key.empty() ? "evolution" : key;
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = factories_.find(resolved);
        if (it == factories_.end()) {
            std::string known;
            for (const auto& [k, f] : factories_) {
                known += known.empty() ? k : ", " + k;
            }
            PRUNER_FATAL("unknown explorer '" << resolved
                                              << "' (registered: " << known
                                              << ")");
        }
        factory = it->second;
    }
    // Invoke outside the lock: a portfolio factory re-enters make() for
    // its arms.
    return factory(ExplorerSpec(resolved, config));
}

bool
ExplorerRegistry::contains(const std::string& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(key) != 0;
}

std::vector<std::string>
ExplorerRegistry::keys() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [k, f] : factories_) {
        out.push_back(k);
    }
    return out;
}

} // namespace pruner
