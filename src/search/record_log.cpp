#include "search/record_log.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/logging.hpp"

namespace pruner {

std::string
recordToLine(const MeasuredRecord& record)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << record.task.key << "\t" << record.task.hash() << "\t"
        << record.sch.serialize() << "\t" << record.latency;
    return oss.str();
}

bool
lineToRecord(const std::string& line,
             const std::vector<SubgraphTask>& known_tasks,
             MeasuredRecord* out)
{
    PRUNER_CHECK(out != nullptr);
    std::istringstream iss(line);
    std::string key, hash_str, sched_str, latency_str;
    if (!std::getline(iss, key, '\t') ||
        !std::getline(iss, hash_str, '\t') ||
        !std::getline(iss, sched_str, '\t') ||
        !std::getline(iss, latency_str)) {
        return false;
    }
    uint64_t task_hash = 0;
    double latency = 0.0;
    try {
        task_hash = std::stoull(hash_str);
        latency = std::stod(latency_str);
    } catch (const std::exception&) {
        return false;
    }
    if (!std::isfinite(latency) || latency <= 0.0) {
        return false;
    }
    const SubgraphTask* task = nullptr;
    for (const auto& t : known_tasks) {
        if (t.hash() == task_hash) {
            task = &t;
            break;
        }
    }
    if (task == nullptr) {
        return false;
    }
    try {
        out->sch = Schedule::deserialize(sched_str);
    } catch (const std::exception&) {
        return false;
    }
    out->task = *task;
    out->latency = latency;
    return true;
}

void
appendRecordLog(const std::string& path,
                const std::vector<MeasuredRecord>& records)
{
    std::ofstream out(path, std::ios::app);
    if (!out) {
        PRUNER_FATAL("cannot open record log " << path << " for append");
    }
    for (const auto& record : records) {
        out << recordToLine(record) << "\n";
    }
    if (!out) {
        PRUNER_FATAL("write failure on record log " << path);
    }
}

std::vector<MeasuredRecord>
loadRecordLog(const std::string& path,
              const std::vector<SubgraphTask>& known_tasks)
{
    std::ifstream in(path);
    if (!in) {
        PRUNER_FATAL("cannot open record log " << path);
    }
    std::vector<MeasuredRecord> records;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        MeasuredRecord record;
        if (lineToRecord(line, known_tasks, &record)) {
            records.push_back(std::move(record));
        }
    }
    return records;
}

void
replayIntoDb(const std::vector<MeasuredRecord>& records, TuningRecordDb* db)
{
    PRUNER_CHECK(db != nullptr);
    for (const auto& record : records) {
        db->add(record);
    }
}

} // namespace pruner
