#include "search/record_log.hpp"

#include <cmath>
#include <fstream>
#include <iterator>
#include <locale>
#include <sstream>

#include "support/io.hpp"
#include "support/logging.hpp"

namespace pruner {

namespace {

/** Parse a double in the classic locale (std::stod honours the global C
 *  locale, which would make logs non-portable across machines). */
bool
parseClassicDouble(const std::string& text, double* out)
{
    std::istringstream iss(text);
    iss.imbue(std::locale::classic());
    double value = 0.0;
    if (!(iss >> value)) {
        return false;
    }
    *out = value;
    return true;
}

bool
parseU64(const std::string& text, uint64_t* out)
{
    std::istringstream iss(text);
    iss.imbue(std::locale::classic());
    uint64_t value = 0;
    if (!(iss >> value)) {
        return false;
    }
    *out = value;
    return true;
}

} // namespace

std::string
recordToLine(const MeasuredRecord& record)
{
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    oss.precision(17);
    oss << record.task.key << "\t" << record.task.hash() << "\t"
        << record.sch.serialize() << "\t" << record.latency;
    return oss.str();
}

bool
lineToRawRecord(const std::string& line, RawRecordLine* out)
{
    PRUNER_CHECK(out != nullptr);
    std::istringstream iss(line);
    std::string key, hash_str, sched_str, latency_str;
    if (!std::getline(iss, key, '\t') ||
        !std::getline(iss, hash_str, '\t') ||
        !std::getline(iss, sched_str, '\t') ||
        !std::getline(iss, latency_str)) {
        return false;
    }
    uint64_t task_hash = 0;
    double latency = 0.0;
    if (!parseU64(hash_str, &task_hash) ||
        !parseClassicDouble(latency_str, &latency)) {
        return false;
    }
    if (!std::isfinite(latency) || latency <= 0.0) {
        return false;
    }
    try {
        out->sch = Schedule::deserialize(sched_str);
    } catch (const std::exception&) {
        return false;
    }
    out->task_key = std::move(key);
    out->task_hash = task_hash;
    out->latency = latency;
    return true;
}

bool
lineToRecord(const std::string& line,
             const std::vector<SubgraphTask>& known_tasks,
             MeasuredRecord* out)
{
    PRUNER_CHECK(out != nullptr);
    RawRecordLine raw;
    if (!lineToRawRecord(line, &raw)) {
        return false;
    }
    for (const auto& t : known_tasks) {
        if (t.hash() == raw.task_hash) {
            out->task = t;
            out->sch = std::move(raw.sch);
            out->latency = raw.latency;
            return true;
        }
    }
    return false;
}

void
appendRecordLog(const std::string& path,
                const std::vector<MeasuredRecord>& records)
{
    std::string batch;
    for (const auto& record : records) {
        batch += io::withLineCrc(recordToLine(record));
        batch.push_back('\n');
    }
    if (!io::appendFile(path, batch)) {
        PRUNER_FATAL("write failure on record log " << path);
    }
}

std::vector<MeasuredRecord>
loadRecordLog(const std::string& path,
              const std::vector<SubgraphTask>& known_tasks)
{
    auto records = tryLoadRecordLog(path, known_tasks);
    if (!records.has_value()) {
        PRUNER_FATAL("cannot open record log " << path);
    }
    return std::move(*records);
}

std::optional<std::vector<MeasuredRecord>>
tryLoadRecordLog(const std::string& path,
                 const std::vector<SubgraphTask>& known_tasks)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    // A crash mid-append leaves a final line without its newline; only
    // complete lines are trustworthy, so the torn tail is dropped.
    size_t usable = bytes.size();
    if (usable > 0 && bytes[usable - 1] != '\n') {
        const size_t last_nl = bytes.find_last_of('\n');
        const size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
        PRUNER_WARN("record log '" << path << "' has a torn final line ("
                                   << usable - keep
                                   << " bytes); ignoring it");
        usable = keep;
    }

    std::vector<MeasuredRecord> records;
    size_t corrupt = 0;
    size_t pos = 0;
    while (pos < usable) {
        const size_t eol = bytes.find('\n', pos);
        std::string line = bytes.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) {
            continue;
        }
        if (io::checkLineCrc(line) == io::LineCrc::Mismatch) {
            ++corrupt;
            continue;
        }
        MeasuredRecord record;
        if (lineToRecord(line, known_tasks, &record)) {
            records.push_back(std::move(record));
        }
    }
    if (corrupt > 0) {
        PRUNER_WARN("record log '" << path << "': skipped " << corrupt
                                   << " line(s) with CRC mismatch");
    }
    return records;
}

void
replayIntoDb(const std::vector<MeasuredRecord>& records, TuningRecordDb* db)
{
    PRUNER_CHECK(db != nullptr);
    for (const auto& record : records) {
        db->add(record);
    }
}

} // namespace pruner
