#pragma once

/**
 * @file tuning_record.hpp
 * The tuning-record database R_tune of Algorithm 1: every measured
 * (task, schedule, latency) triple plus per-task incumbents.
 */

#include <unordered_map>
#include <vector>

#include "cost/cost_model.hpp"

namespace pruner {

/** Measured-history store shared by every search policy. */
class TuningRecordDb
{
  public:
    /** Insert one measurement (latency must be finite and positive). */
    void add(MeasuredRecord record);

    /** All records, in insertion order. */
    const std::vector<MeasuredRecord>& records() const { return records_; }

    /** Number of measurements recorded for @p task. */
    size_t countForTask(const SubgraphTask& task) const;

    /** Best measured latency for @p task; +inf if none. */
    double bestLatency(const SubgraphTask& task) const;

    /** Best schedule for @p task; nullptr if none measured yet. */
    const Schedule* bestSchedule(const SubgraphTask& task) const;

    /** Best latency for the task as of @p upto records inserted (for
     *  improvement-rate estimation); +inf if none. */
    double bestLatencyBefore(const SubgraphTask& task, size_t upto) const;

    /** True if @p sch was already measured for @p task. */
    bool measured(const SubgraphTask& task, const Schedule& sch) const;

    /** The last @p n records (training window for online updates). */
    std::vector<MeasuredRecord> recentWindow(size_t n) const;

    size_t size() const { return records_.size(); }

  private:
    struct BestEntry
    {
        double latency = 0.0;
        size_t record_index = 0;
    };

    std::vector<MeasuredRecord> records_;
    std::unordered_map<uint64_t, BestEntry> best_;
    std::unordered_map<uint64_t, size_t> count_;
    std::unordered_map<uint64_t, char> seen_pairs_;
};

} // namespace pruner
