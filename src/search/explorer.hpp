#pragma once

/**
 * @file explorer.hpp
 * Pluggable draft-stage explorers.
 *
 * The draft-then-verify mechanism is agnostic to *how* draft candidates
 * are proposed: the paper's evolutionary loop is one strategy, but a
 * Bayesian-optimization walk over the tiling space or a boosted-trees
 * surrogate explores the same space with a different cost/quality
 * trade-off. An Explorer abstracts the draft stage behind one call:
 *
 *   proposeBatch(ctx) -> ranked candidate population
 *   observe(measured records) -> online state update
 *
 * Determinism contract (repo-wide discipline):
 *  - An explorer owns NO Rng. Every random draw flows through
 *    ExplorerContext::rng — the tuning loop's main generator — so the
 *    draft stage stays on the run's single RNG lineage and the async
 *    model trainer (which clones the cost model, never the explorer) can
 *    overlap training without perturbing exploration. clone() deep-copies
 *    all learned state (trees, incumbents, racing standings), preserving
 *    that lineage exactly.
 *  - proposeBatch and observe run on the calling thread at deterministic
 *    points of the tuning loop; any pool fan-out must go through
 *    scoreChunked (values identical to serial by construction).
 *  - No wall-clock, no global mutable state: the same call sequence
 *    produces byte-identical proposals at any worker count.
 *
 * The default "evolution" explorer wraps EvolutionarySearch verbatim and
 * is byte-identical to the pre-interface draft loops (asserted against
 * frozen pre-refactor golden sessions in tests/test_explorer.cpp).
 */

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "search/evolution.hpp"

namespace pruner {

namespace obs {
class MetricsRegistry;
} // namespace obs

/**
 * Everything a draft call needs, borrowed from the tuning loop:
 * the task and device, the incumbent seeds, the resident draft fitness
 * (Symbol-Analyzer score in Pruner's LSE, the learned cost model in the
 * Ansor-style loop), the loop's Rng, and the evolution-equivalent search
 * budget (population x (iterations + 1) fitness evaluations) every
 * explorer honours so strategies stay comparable per round.
 */
struct ExplorerContext
{
    const SubgraphTask* task = nullptr;
    const DeviceSpec* device = nullptr;
    /** Measured incumbents injected into the search (may be empty). */
    const std::vector<Schedule>* seeds = nullptr;
    /** Resident draft fitness (higher = predicted faster). Must be
     *  reentrant; explorers evaluate it through scoreChunked. */
    ScoreFn score;
    /** The tuning loop's generator (never owned by the explorer). */
    Rng* rng = nullptr;
    /** Out: fitness evaluations performed (feeds the SimClock charge). */
    size_t* n_evaluated = nullptr;
    /** Search budget, fan-out pool, chunking, and metrics sink — the
     *  same knobs the evolutionary draft ran on. */
    EvolutionConfig evo;
};

/** Parsed explorer options: "k1=v1,k2=v2" (no tabs — the string is
 *  recorded as one field of the session log's policycfg line). Unknown
 *  keys are ignored by explorers, so one config string can parameterize
 *  a whole portfolio. */
class ExplorerSpec
{
  public:
    ExplorerSpec() = default;
    /** @throws FatalError on a malformed pair (no '=') or a tab. */
    ExplorerSpec(std::string key, const std::string& config);

    const std::string& key() const { return key_; }
    /** The verbatim config string ("" when none). */
    const std::string& config() const { return config_; }

    bool has(const std::string& name) const;
    std::string get(const std::string& name,
                    const std::string& fallback) const;
    int64_t getInt(const std::string& name, int64_t fallback) const;
    double getDouble(const std::string& name, double fallback) const;

  private:
    std::string key_;
    std::string config_;
    std::vector<std::pair<std::string, std::string>> pairs_;
};

/** Abstract draft-stage explorer. See the file comment for the
 *  determinism contract. */
class Explorer
{
  public:
    explicit Explorer(ExplorerSpec spec) : spec_(std::move(spec)) {}
    virtual ~Explorer() = default;

    /** Registry key ("evolution", "bayes", "gbt", "portfolio"). */
    const std::string& key() const { return spec_.key(); }
    const ExplorerSpec& spec() const { return spec_; }

    /**
     * Draft one candidate population for ctx.task, best first (up to
     * ctx.evo.out_size candidates). Consumes *ctx.rng; counts fitness
     * evaluations into *ctx.n_evaluated and the per-explorer counters
     * (explorer_<key>_*_total) of the bound registry.
     */
    std::vector<ScoredSchedule> proposeBatch(ExplorerContext& ctx);

    /**
     * Feed measured outcomes back (called after every measurement batch
     * and for warm-started records; +inf latencies are failed trials).
     * Updates online state — the GBT surrogate's training window, the
     * Bayesian incumbent, the portfolio standings. No-op by default.
     */
    void observe(const SubgraphTask& task, const DeviceSpec& device,
                 std::span<const Schedule> measured,
                 std::span<const double> latencies);

    /** Deep copy, carrying all learned state and the metrics binding
     *  (the rng-lineage contract: a clone continues the exact
     *  deterministic trajectory of the original). */
    virtual std::unique_ptr<Explorer> clone() const = 0;

    /** Serialize all learned state into an opaque printable blob (no
     *  newlines; doubles as IEEE-754 bit patterns) for checkpointing.
     *  Stateless explorers return "". The encoding is canonical: two
     *  explorers with identical learned state serialize identically. */
    virtual std::string serializeState() const { return ""; }

    /** Restore a blob produced by serializeState() of an explorer built
     *  from the same spec; subsequent proposals match the original's.
     *  @throws FatalError on a malformed blob. */
    virtual void restoreState(const std::string& blob)
    {
        if (!blob.empty()) {
            PRUNER_FATAL("explorer '" << key()
                                      << "' cannot restore state: " << blob);
        }
    }

    /** Bind the explorer_<key>_*_total counters to @p metrics (nullptr
     *  unbinds). Pure accounting — never changes proposals. */
    virtual void bindMetrics(obs::MetricsRegistry* metrics)
    {
        metrics_ = metrics;
    }

  protected:
    /** Strategy hook behind proposeBatch's accounting wrapper. */
    virtual std::vector<ScoredSchedule> propose(ExplorerContext& ctx) = 0;
    /** Strategy hook behind observe's accounting wrapper. */
    virtual void onObserve(const SubgraphTask& task,
                           const DeviceSpec& device,
                           std::span<const Schedule> measured,
                           std::span<const double> latencies);

    ExplorerSpec spec_;
    obs::MetricsRegistry* metrics_ = nullptr;
};

struct MeasuredRecord;

/** Replay warm-started records into @p explorer in insertion order,
 *  batched by consecutive same-task runs (the order TuningRecordDb
 *  preserves). Gives stateful explorers (gbt, bayes, portfolio) the same
 *  offline knowledge a warm-started cost model gets. */
void observeWarmRecords(Explorer& explorer, const DeviceSpec& device,
                        const std::vector<MeasuredRecord>& records);

/**
 * String-keyed explorer factory. Built-ins ("evolution", "bayes", "gbt",
 * "portfolio") are registered at construction; tests and downstream code
 * can add their own. make() with an unknown key is a FatalError listing
 * the registered keys. Thread-safe (a serve daemon's concurrent tune()
 * calls each make their own explorer instance).
 */
class ExplorerRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<Explorer>(const ExplorerSpec&)>;

    /** The process-wide registry. */
    static ExplorerRegistry& instance();

    void registerFactory(const std::string& key, Factory factory);

    /** Build an explorer. @p key "" defaults to "evolution"; @p config
     *  is the comma-separated option string (see ExplorerSpec). */
    std::unique_ptr<Explorer> make(const std::string& key,
                                   const std::string& config = "") const;

    bool contains(const std::string& key) const;
    /** Registered keys, sorted. */
    std::vector<std::string> keys() const;

  private:
    ExplorerRegistry();

    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

} // namespace pruner
