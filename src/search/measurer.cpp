#include "search/measurer.hpp"

#include <cmath>
#include <thread>
#include <unordered_map>

namespace pruner {

namespace {
/** alias[] marker: candidate is unique in its batch (not a duplicate). */
constexpr size_t kNotAliased = static_cast<size_t>(-1);
} // namespace

Measurer::Measurer(const DeviceSpec& device, SimClock* clock, uint64_t seed,
                   const CostConstants& constants)
    : simulator_(device), clock_(clock), rng_(seed), constants_(constants),
      batch_seed_base_(splitmix64(seed ^ 0xBA7C4ED5EEDull))
{
}

std::vector<double>
Measurer::measure(const SubgraphTask& task,
                  const std::vector<Schedule>& candidates)
{
    std::vector<double> out;
    out.reserve(candidates.size());
    for (const auto& sch : candidates) {
        const double latency = simulator_.measure(task, sch, rng_);
        out.push_back(latency);
        ++total_trials_;
        if (!std::isfinite(latency)) {
            ++failed_trials_;
        }
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            clock_->charge(CostCategory::Measurement,
                           constants_.measure_per_trial);
        }
    }
    return out;
}

std::vector<double>
Measurer::measureBatch(const SubgraphTask& task,
                       const std::vector<Schedule>& candidates)
{
    // A single-task round: one code path guarantees the serial loop and
    // the sharded pipeline stay value-identical.
    return std::move(measureRound({RoundBatch{&task, &candidates}}).front());
}

std::vector<std::vector<double>>
Measurer::measureRound(const std::vector<RoundBatch>& round)
{
    const size_t n_batches = round.size();
    std::vector<std::vector<double>> out(n_batches);
    std::vector<uint64_t> batch_seeds(n_batches);
    std::vector<uint64_t> task_hashes(n_batches);
    std::vector<std::vector<uint64_t>> sched_hashes(n_batches);
    std::vector<std::vector<size_t>> alias(n_batches);

    // Sequential pre-pass, one sub-batch at a time: draw the per-batch
    // seed, hash every candidate once (the noise seeding and cache insert
    // key off the same hash), resolve cache hits and in-batch duplicates.
    // Done on the calling thread, so seed consumption and hit/miss
    // accounting are deterministic and identical to sequential
    // measureBatch calls.
    struct Job
    {
        size_t batch;
        size_t index;
    };
    std::vector<Job> jobs;
    size_t n_total = 0;
    size_t hits = 0;
    for (size_t b = 0; b < n_batches; ++b) {
        const auto& candidates = *round[b].candidates;
        const size_t n = candidates.size();
        batch_seeds[b] = hashCombine(batch_seed_base_, batch_index_++);
        task_hashes[b] = round[b].task->hash();
        out[b].assign(n, 0.0);
        sched_hashes[b].resize(n);
        alias[b].assign(n, kNotAliased);
        n_total += n;
        std::unordered_map<uint64_t, size_t> first_seen;
        for (size_t i = 0; i < n; ++i) {
            sched_hashes[b][i] = candidates[i].hash();
            double cached = 0.0;
            if (cache_ != nullptr &&
                cache_->lookup(task_hashes[b], sched_hashes[b][i],
                               &cached)) {
                out[b][i] = cached;
                ++hits;
                continue;
            }
            const auto [it, inserted] = first_seen.emplace(
                hashCombine(task_hashes[b], sched_hashes[b][i]), i);
            if (!inserted) {
                alias[b][i] = it->second;
                continue;
            }
            jobs.push_back({b, i});
        }
    }

    // Worker phase: every task's misses fan out through one pool pass, so
    // the pool never drains at task boundaries. Each candidate's noise
    // stream is derived from its sub-batch seed, its index, and its
    // content hash — never from the shared rng_ — so values are identical
    // for any worker count.
    const auto run_one = [&](size_t job) {
        const auto [b, i] = jobs[job];
        Rng trial_rng(hashCombine(hashCombine(batch_seeds[b], i),
                                  sched_hashes[b][i]));
        out[b][i] = simulator_.measure(*round[b].task,
                                       (*round[b].candidates)[i], trial_rng);
        if (trial_latency_.count() > 0) {
            std::this_thread::sleep_for(trial_latency_);
        }
    };
    if (pool_ != nullptr && jobs.size() > 1) {
        pool_->parallelFor(jobs.size(), run_one);
    } else {
        for (size_t job = 0; job < jobs.size(); ++job) {
            run_one(job);
        }
    }

    for (const auto& [b, i] : jobs) {
        if (cache_ != nullptr) {
            cache_->insert(task_hashes[b], sched_hashes[b][i], out[b][i]);
        }
    }
    for (size_t b = 0; b < n_batches; ++b) {
        for (size_t i = 0; i < out[b].size(); ++i) {
            if (alias[b][i] != kNotAliased) {
                out[b][i] = out[b][alias[b][i]];
            }
            if (!std::isfinite(out[b][i])) {
                ++failed_trials_;
            }
        }
    }
    total_trials_ += n_total;
    cache_hits_ += hits;
    simulated_trials_ += jobs.size();

    if (clock_ != nullptr && !jobs.empty()) {
        // Compilation is host work and overlaps across workers — across
        // *all* the round's tasks at once, which is where a sharded round
        // beats per-task batches (one ceil instead of one per task). The
        // device itself runs one measurement at a time. Cache hits charge
        // nothing.
        const auto misses = static_cast<double>(jobs.size());
        const auto lanes = static_cast<double>(workers());
        clock_->charge(CostCategory::Compile,
                       std::ceil(misses / lanes) *
                           constants_.compile_per_trial);
        clock_->charge(CostCategory::Measurement,
                       misses * constants_.measure_per_trial);
    }
    return out;
}

std::vector<double>
Measurer::measureAdaptive(const SubgraphTask& task,
                          const std::vector<Schedule>& candidates,
                          double time_scale, double extra_noise)
{
    std::vector<double> out;
    out.reserve(candidates.size());
    for (const auto& sch : candidates) {
        double latency = simulator_.measure(task, sch, rng_);
        if (std::isfinite(latency)) {
            latency *= std::exp(rng_.normal(0.0, extra_noise));
        } else {
            ++failed_trials_;
        }
        out.push_back(latency);
        ++total_trials_;
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            clock_->charge(CostCategory::Measurement,
                           constants_.measure_per_trial * time_scale);
        }
    }
    return out;
}

MeasureEnv::MeasureEnv(Measurer& measurer, int workers, bool use_cache)
    : measurer_(&measurer),
      cache_(use_cache ? MeasureCache::kDefaultCapacity : 0)
{
    if (workers > 1) {
        pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(workers));
        measurer.setThreadPool(pool_.get());
    }
    measurer.setCache(&cache_);
}

MeasureEnv::~MeasureEnv()
{
    measurer_->setThreadPool(nullptr);
    measurer_->setCache(nullptr);
}

} // namespace pruner
