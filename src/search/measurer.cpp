#include "search/measurer.hpp"

#include <cmath>

namespace pruner {

Measurer::Measurer(const DeviceSpec& device, SimClock* clock, uint64_t seed,
                   const CostConstants& constants)
    : simulator_(device), clock_(clock), rng_(seed), constants_(constants)
{
}

std::vector<double>
Measurer::measure(const SubgraphTask& task,
                  const std::vector<Schedule>& candidates)
{
    std::vector<double> out;
    out.reserve(candidates.size());
    for (const auto& sch : candidates) {
        const double latency = simulator_.measure(task, sch, rng_);
        out.push_back(latency);
        ++total_trials_;
        if (!std::isfinite(latency)) {
            ++failed_trials_;
        }
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            clock_->charge(CostCategory::Measurement,
                           constants_.measure_per_trial);
        }
    }
    return out;
}

std::vector<double>
Measurer::measureAdaptive(const SubgraphTask& task,
                          const std::vector<Schedule>& candidates,
                          double time_scale, double extra_noise)
{
    std::vector<double> out;
    out.reserve(candidates.size());
    for (const auto& sch : candidates) {
        double latency = simulator_.measure(task, sch, rng_);
        if (std::isfinite(latency)) {
            latency *= std::exp(rng_.normal(0.0, extra_noise));
        } else {
            ++failed_trials_;
        }
        out.push_back(latency);
        ++total_trials_;
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            clock_->charge(CostCategory::Measurement,
                           constants_.measure_per_trial * time_scale);
        }
    }
    return out;
}

} // namespace pruner
