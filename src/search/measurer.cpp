#include "search/measurer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>

#include "replay/session_recorder.hpp"

namespace pruner {

namespace {
/** alias[] marker: candidate is unique in its batch (not a duplicate). */
constexpr size_t kNotAliased = static_cast<size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

Measurer::Measurer(const DeviceSpec& device, SimClock* clock, uint64_t seed,
                   const CostConstants& constants)
    : simulator_(device), clock_(clock), rng_(seed), constants_(constants),
      batch_seed_base_(splitmix64(seed ^ 0xBA7C4ED5EEDull))
{
    setMetrics(nullptr);
}

void
Measurer::setMetrics(obs::MetricsRegistry* metrics)
{
    obs::MetricsRegistry& r = metrics != nullptr ? *metrics : own_metrics_;
    counters_.trials = r.counter("measure_trials_total");
    counters_.failed = r.counter("measure_failed_trials_total");
    counters_.cache_hits = r.counter("measure_cache_hits_total");
    counters_.simulated = r.counter("measure_simulated_trials_total");
    counters_.injected_launch = r.counter("fault_injected_launch_total");
    counters_.injected_timeout = r.counter("fault_injected_timeout_total");
    counters_.injected_flaky = r.counter("fault_injected_flaky_total");
}

void
Measurer::countFault(FaultKind kind)
{
    switch (kind) {
    case FaultKind::LaunchFailure: counters_.injected_launch->add(); break;
    case FaultKind::Timeout: counters_.injected_timeout->add(); break;
    case FaultKind::FlakyLatency: counters_.injected_flaky->add(); break;
    case FaultKind::None: break;
    }
}

uint32_t
Measurer::nextAttempt(uint64_t task_hash, uint64_t sched_hash)
{
    if (!fault_plan_.enabled()) {
        return 0;
    }
    return fault_attempts_[hashCombine(task_hash, sched_hash)]++;
}

MeasurerState
Measurer::exportState() const
{
    MeasurerState state;
    state.rng = rng_.state();
    state.batch_index = batch_index_;
    state.fault_attempts.assign(fault_attempts_.begin(),
                                fault_attempts_.end());
    std::sort(state.fault_attempts.begin(), state.fault_attempts.end());
    return state;
}

void
Measurer::restoreState(const MeasurerState& state)
{
    rng_.setState(state.rng);
    batch_index_ = state.batch_index;
    fault_attempts_.clear();
    fault_attempts_.insert(state.fault_attempts.begin(),
                           state.fault_attempts.end());
}

std::vector<double>
Measurer::measure(const SubgraphTask& task,
                  const std::vector<Schedule>& candidates)
{
    std::vector<double> out;
    out.reserve(candidates.size());
    const uint64_t task_hash = task.hash();
    for (const auto& sch : candidates) {
        const uint64_t sched_hash = sch.hash();
        const uint32_t attempt = nextAttempt(task_hash, sched_hash);
        double scale = 1.0;
        FaultKind kind =
            fault_plan_.enabled()
                ? fault_plan_.draw(task_hash, sched_hash, attempt, &scale)
                : FaultKind::None;
        double latency;
        if (kind == FaultKind::LaunchFailure || kind == FaultKind::Timeout) {
            // The injected failure preempts the device: nothing to run.
            latency = kInf;
        } else {
            latency = simulator_.measure(task, sch, rng_);
            if (kind == FaultKind::FlakyLatency) {
                if (std::isfinite(latency)) {
                    latency *= scale;
                } else {
                    kind = FaultKind::None; // natural failure, no perturbation
                }
            }
        }
        out.push_back(latency);
        counters_.trials->add();
        if (!std::isfinite(latency)) {
            counters_.failed->add();
        }
        countFault(kind);
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            double measure_s = constants_.measure_per_trial;
            if (kind == FaultKind::Timeout) {
                // A timed-out trial blocks the device for its full window.
                measure_s += fault_plan_.timeout_extra_s;
            }
            clock_->charge(CostCategory::Measurement, measure_s);
        }
        if (recorder_ != nullptr) {
            recorder_->onMeasurement(task_hash, sched_hash, latency, kind);
        }
    }
    return out;
}

std::vector<double>
Measurer::measureBatch(const SubgraphTask& task,
                       const std::vector<Schedule>& candidates)
{
    // A single-task round: one code path guarantees the serial loop and
    // the sharded pipeline stay value-identical.
    return std::move(measureRound({RoundBatch{&task, &candidates}}).front());
}

std::vector<std::vector<double>>
Measurer::measureRound(const std::vector<RoundBatch>& round)
{
    // One deterministic span per round: begin/end stamps bracket the
    // round's clock charges (inert without a tracer and a clock).
    obs::ScopedSpan span(tracer_, obs::TraceTrack::Main, clock_,
                         "measure_round", "measure");
    const size_t n_batches = round.size();
    std::vector<std::vector<double>> out(n_batches);
    std::vector<uint64_t> batch_seeds(n_batches);
    std::vector<uint64_t> task_hashes(n_batches);
    std::vector<std::vector<uint64_t>> sched_hashes(n_batches);
    std::vector<std::vector<size_t>> alias(n_batches);
    std::vector<std::vector<FaultKind>> kinds(n_batches);

    // Sequential pre-pass, one sub-batch at a time: draw the per-batch
    // seed, hash every candidate once (the noise seeding and cache insert
    // key off the same hash), resolve cache hits and in-batch duplicates,
    // and assign each simulated attempt its fault-stream ordinal. Done on
    // the calling thread, so seed/attempt consumption and hit/miss
    // accounting are deterministic and identical to sequential
    // measureBatch calls.
    struct Job
    {
        size_t batch;
        size_t index;
        uint32_t attempt;
    };
    std::vector<Job> jobs;
    size_t n_total = 0;
    size_t hits = 0;
    for (size_t b = 0; b < n_batches; ++b) {
        const auto& candidates = *round[b].candidates;
        const size_t n = candidates.size();
        batch_seeds[b] = hashCombine(batch_seed_base_, batch_index_++);
        task_hashes[b] = round[b].task->hash();
        out[b].assign(n, 0.0);
        sched_hashes[b].resize(n);
        alias[b].assign(n, kNotAliased);
        kinds[b].assign(n, FaultKind::None);
        n_total += n;
        std::unordered_map<uint64_t, size_t> first_seen;
        for (size_t i = 0; i < n; ++i) {
            sched_hashes[b][i] = candidates[i].hash();
            double cached = 0.0;
            if (cache_ != nullptr &&
                cache_->lookup(task_hashes[b], sched_hashes[b][i],
                               &cached)) {
                out[b][i] = cached;
                ++hits;
                continue;
            }
            const auto [it, inserted] = first_seen.emplace(
                hashCombine(task_hashes[b], sched_hashes[b][i]), i);
            if (!inserted) {
                alias[b][i] = it->second;
                continue;
            }
            jobs.push_back(
                {b, i, nextAttempt(task_hashes[b], sched_hashes[b][i])});
        }
    }

    // Worker phase: every task's misses fan out through one pool pass, so
    // the pool never drains at task boundaries. Each candidate's noise
    // stream is derived from its sub-batch seed, its index, and its
    // content hash — never from the shared rng_ — and its fault draw from
    // (plan seed, content hashes, attempt) — so values and injected
    // faults are identical for any worker count.
    const auto run_one = [&](size_t job) {
        const auto [b, i, attempt] = jobs[job];
        double scale = 1.0;
        FaultKind kind = fault_plan_.enabled()
                             ? fault_plan_.draw(task_hashes[b],
                                                sched_hashes[b][i], attempt,
                                                &scale)
                             : FaultKind::None;
        if (kind == FaultKind::LaunchFailure || kind == FaultKind::Timeout) {
            out[b][i] = kInf;
        } else {
            Rng trial_rng(hashCombine(hashCombine(batch_seeds[b], i),
                                      sched_hashes[b][i]));
            out[b][i] = simulator_.measure(*round[b].task,
                                           (*round[b].candidates)[i],
                                           trial_rng);
            if (kind == FaultKind::FlakyLatency) {
                if (std::isfinite(out[b][i])) {
                    out[b][i] *= scale;
                } else {
                    kind = FaultKind::None; // natural failure, no perturbation
                }
            }
            if (trial_latency_.count() > 0) {
                std::this_thread::sleep_for(trial_latency_);
            }
        }
        kinds[b][i] = kind;
    };
    if (pool_ != nullptr && jobs.size() > 1) {
        pool_->parallelFor(jobs.size(), run_one);
    } else {
        for (size_t job = 0; job < jobs.size(); ++job) {
            run_one(job);
        }
    }

    size_t timeouts_this_round = 0;
    for (const auto& [b, i, attempt] : jobs) {
        (void)attempt;
        countFault(kinds[b][i]);
        if (kinds[b][i] == FaultKind::Timeout) {
            ++timeouts_this_round;
        }
        // Injected transients never enter the cache: a timeout or a flaky
        // latency is a property of the attempt, not of the (task,
        // schedule) pair, so a revisit must re-measure. Launch failures
        // (natural or injected) are permanent, and their +inf entries make
        // re-visits of unlaunchable schedules free.
        if (cache_ != nullptr && kinds[b][i] != FaultKind::Timeout &&
            kinds[b][i] != FaultKind::FlakyLatency) {
            cache_->insert(task_hashes[b], sched_hashes[b][i], out[b][i]);
        }
    }
    size_t failed_this_round = 0;
    for (size_t b = 0; b < n_batches; ++b) {
        for (size_t i = 0; i < out[b].size(); ++i) {
            if (alias[b][i] != kNotAliased) {
                out[b][i] = out[b][alias[b][i]];
                kinds[b][i] = kinds[b][alias[b][i]];
            }
            if (!std::isfinite(out[b][i])) {
                ++failed_this_round;
            }
        }
    }
    counters_.failed->add(failed_this_round);
    counters_.trials->add(n_total);
    counters_.cache_hits->add(hits);
    counters_.simulated->add(jobs.size());
    span.argU64("batches", n_batches);
    span.argU64("candidates", n_total);
    span.argU64("hits", hits);
    span.argU64("misses", jobs.size());
    span.argU64("timeouts", timeouts_this_round);

    if (clock_ != nullptr && !jobs.empty()) {
        // Compilation is host work and overlaps across workers — across
        // *all* the round's tasks at once, which is where a sharded round
        // beats per-task batches (one ceil instead of one per task). The
        // device itself runs one measurement at a time, and a timed-out
        // trial holds it for its full timeout window on top of the normal
        // per-trial cost. Cache hits charge nothing. The overlap divisor
        // is clockLanes(), not the live pool size, so a replayed session
        // can pin the recorded worker count and reproduce the clock with
        // any real thread count.
        const auto misses = static_cast<double>(jobs.size());
        const auto lanes = static_cast<double>(clockLanes());
        clock_->charge(CostCategory::Compile,
                       std::ceil(misses / lanes) *
                           constants_.compile_per_trial);
        clock_->charge(CostCategory::Measurement,
                       misses * constants_.measure_per_trial +
                           static_cast<double>(timeouts_this_round) *
                               fault_plan_.timeout_extra_s);
    }

    // Session events go out after all accounting, on the calling thread,
    // in (batch, candidate) order — cache hits and aliases included — so
    // the log is identical for any worker count.
    if (recorder_ != nullptr) {
        for (size_t b = 0; b < n_batches; ++b) {
            for (size_t i = 0; i < out[b].size(); ++i) {
                recorder_->onMeasurement(task_hashes[b], sched_hashes[b][i],
                                         out[b][i], kinds[b][i]);
            }
        }
    }
    return out;
}

std::vector<double>
Measurer::measureAdaptive(const SubgraphTask& task,
                          const std::vector<Schedule>& candidates,
                          double time_scale, double extra_noise)
{
    // Same obs surface as measureRound: a deterministic span bracketing
    // the batch's clock charges plus the trial/fault counters. Adaptive
    // measurement bypasses the cache and pool by design, so there are no
    // hits and every trial is simulated.
    obs::ScopedSpan span(tracer_, obs::TraceTrack::Main, clock_,
                         "measure_adaptive", "measure");
    size_t timeouts_this_batch = 0;
    std::vector<double> out;
    out.reserve(candidates.size());
    const uint64_t task_hash = task.hash();
    for (const auto& sch : candidates) {
        const uint64_t sched_hash = sch.hash();
        const uint32_t attempt = nextAttempt(task_hash, sched_hash);
        double scale = 1.0;
        FaultKind kind =
            fault_plan_.enabled()
                ? fault_plan_.draw(task_hash, sched_hash, attempt, &scale)
                : FaultKind::None;
        double latency;
        if (kind == FaultKind::LaunchFailure || kind == FaultKind::Timeout) {
            latency = kInf;
            counters_.failed->add();
        } else {
            latency = simulator_.measure(task, sch, rng_);
            if (std::isfinite(latency)) {
                latency *= std::exp(rng_.normal(0.0, extra_noise));
                if (kind == FaultKind::FlakyLatency) {
                    latency *= scale;
                }
            } else {
                if (kind == FaultKind::FlakyLatency) {
                    kind = FaultKind::None;
                }
                counters_.failed->add();
            }
        }
        countFault(kind);
        if (kind == FaultKind::Timeout) {
            ++timeouts_this_batch;
        }
        out.push_back(latency);
        counters_.trials->add();
        counters_.simulated->add();
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            double measure_s = constants_.measure_per_trial * time_scale;
            if (kind == FaultKind::Timeout) {
                measure_s += fault_plan_.timeout_extra_s;
            }
            clock_->charge(CostCategory::Measurement, measure_s);
        }
        if (recorder_ != nullptr) {
            recorder_->onMeasurement(task_hash, sched_hash, latency, kind);
        }
    }
    span.argU64("candidates", candidates.size());
    span.argU64("timeouts", timeouts_this_batch);
    return out;
}

MeasureEnv::MeasureEnv(Measurer& measurer, int workers, bool use_cache)
    : measurer_(&measurer),
      cache_(use_cache ? MeasureCache::kDefaultCapacity : 0)
{
    if (workers > 1) {
        pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(workers));
        measurer.setThreadPool(pool_.get());
    }
    measurer.setCache(&cache_);
}

MeasureEnv::~MeasureEnv()
{
    measurer_->setThreadPool(nullptr);
    measurer_->setCache(nullptr);
}

} // namespace pruner
