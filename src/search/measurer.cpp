#include "search/measurer.hpp"

#include <cmath>
#include <thread>
#include <unordered_map>

namespace pruner {

namespace {
/** alias[] marker: candidate is unique in its batch (not a duplicate). */
constexpr size_t kNotAliased = static_cast<size_t>(-1);
} // namespace

Measurer::Measurer(const DeviceSpec& device, SimClock* clock, uint64_t seed,
                   const CostConstants& constants)
    : simulator_(device), clock_(clock), rng_(seed), constants_(constants),
      batch_seed_base_(splitmix64(seed ^ 0xBA7C4ED5EEDull))
{
}

std::vector<double>
Measurer::measure(const SubgraphTask& task,
                  const std::vector<Schedule>& candidates)
{
    std::vector<double> out;
    out.reserve(candidates.size());
    for (const auto& sch : candidates) {
        const double latency = simulator_.measure(task, sch, rng_);
        out.push_back(latency);
        ++total_trials_;
        if (!std::isfinite(latency)) {
            ++failed_trials_;
        }
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            clock_->charge(CostCategory::Measurement,
                           constants_.measure_per_trial);
        }
    }
    return out;
}

std::vector<double>
Measurer::measureBatch(const SubgraphTask& task,
                       const std::vector<Schedule>& candidates)
{
    const uint64_t batch_seed = hashCombine(batch_seed_base_, batch_index_++);
    const uint64_t task_hash = task.hash();
    const size_t n = candidates.size();
    std::vector<double> out(n, 0.0);

    // Hash every candidate once up front; measureBatch is the per-round
    // hot path and the pre-pass, noise seeding, and cache insert all key
    // off the same hash.
    std::vector<uint64_t> sched_hashes(n);
    for (size_t i = 0; i < n; ++i) {
        sched_hashes[i] = candidates[i].hash();
    }

    // Sequential pre-pass: resolve cache hits and in-batch duplicates so
    // the worker phase only sees distinct unmeasured candidates. Done on
    // the calling thread, so hit/miss accounting is deterministic.
    std::vector<size_t> jobs;
    jobs.reserve(n);
    std::vector<size_t> alias(n, kNotAliased);
    std::unordered_map<uint64_t, size_t> first_seen;
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
        double cached = 0.0;
        if (cache_ != nullptr &&
            cache_->lookup(task_hash, sched_hashes[i], &cached)) {
            out[i] = cached;
            ++hits;
            continue;
        }
        const auto [it, inserted] =
            first_seen.emplace(hashCombine(task_hash, sched_hashes[i]), i);
        if (!inserted) {
            alias[i] = it->second;
            continue;
        }
        jobs.push_back(i);
    }

    // Worker phase. Each candidate's noise stream is derived from the
    // batch seed, its index, and its content hash — never from the shared
    // rng_ — so values are identical for any worker count.
    const auto run_one = [&](size_t job) {
        const size_t i = jobs[job];
        Rng trial_rng(hashCombine(hashCombine(batch_seed, i),
                                  sched_hashes[i]));
        out[i] = simulator_.measure(task, candidates[i], trial_rng);
        if (trial_latency_.count() > 0) {
            std::this_thread::sleep_for(trial_latency_);
        }
    };
    if (pool_ != nullptr && jobs.size() > 1) {
        pool_->parallelFor(jobs.size(), run_one);
    } else {
        for (size_t job = 0; job < jobs.size(); ++job) {
            run_one(job);
        }
    }

    for (const size_t i : jobs) {
        if (cache_ != nullptr) {
            cache_->insert(task_hash, sched_hashes[i], out[i]);
        }
    }
    for (size_t i = 0; i < n; ++i) {
        if (alias[i] != kNotAliased) {
            out[i] = out[alias[i]];
        }
        if (!std::isfinite(out[i])) {
            ++failed_trials_;
        }
    }
    total_trials_ += n;
    cache_hits_ += hits;
    simulated_trials_ += jobs.size();

    if (clock_ != nullptr && !jobs.empty()) {
        // Compilation is host work and overlaps across workers; the device
        // itself runs one measurement at a time. Cache hits charge nothing.
        const auto misses = static_cast<double>(jobs.size());
        const auto lanes = static_cast<double>(workers());
        clock_->charge(CostCategory::Compile,
                       std::ceil(misses / lanes) *
                           constants_.compile_per_trial);
        clock_->charge(CostCategory::Measurement,
                       misses * constants_.measure_per_trial);
    }
    return out;
}

std::vector<double>
Measurer::measureAdaptive(const SubgraphTask& task,
                          const std::vector<Schedule>& candidates,
                          double time_scale, double extra_noise)
{
    std::vector<double> out;
    out.reserve(candidates.size());
    for (const auto& sch : candidates) {
        double latency = simulator_.measure(task, sch, rng_);
        if (std::isfinite(latency)) {
            latency *= std::exp(rng_.normal(0.0, extra_noise));
        } else {
            ++failed_trials_;
        }
        out.push_back(latency);
        ++total_trials_;
        if (clock_ != nullptr) {
            clock_->charge(CostCategory::Compile,
                           constants_.compile_per_trial);
            clock_->charge(CostCategory::Measurement,
                           constants_.measure_per_trial * time_scale);
        }
    }
    return out;
}

MeasureEnv::MeasureEnv(Measurer& measurer, int workers, bool use_cache)
    : measurer_(&measurer),
      cache_(use_cache ? MeasureCache::kDefaultCapacity : 0)
{
    if (workers > 1) {
        pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(workers));
        measurer.setThreadPool(pool_.get());
    }
    measurer.setCache(&cache_);
}

MeasureEnv::~MeasureEnv()
{
    measurer_->setThreadPool(nullptr);
    measurer_->setCache(nullptr);
}

} // namespace pruner
