#pragma once

/**
 * @file evolution.hpp
 * Score-guided evolutionary search over schedules.
 *
 * This is the exploration engine shared by every search policy: Ansor /
 * TenSetMLP / TLP / MetaSchedule use it with a learned cost model as the
 * fitness function (scoring the *whole* population each iteration — the
 * expense Pruner attacks), and the Latent Schedule Explorer uses it with
 * the Symbol-based Analyzer as fitness.
 */

#include <functional>
#include <span>
#include <vector>

#include "sched/mutator.hpp"
#include "sched/sampler.hpp"
#include "support/thread_pool.hpp"

namespace pruner {

namespace obs {
class MetricsRegistry;
} // namespace obs

/** Configuration of the evolutionary search. */
struct EvolutionConfig
{
    size_t population = 256;     ///< individuals per generation
    int iterations = 4;          ///< generations after the initial scoring
    double mutation_prob = 0.85; ///< mutate vs crossover when breeding
    double elite_frac = 0.15;    ///< survivors copied unchanged
    size_t out_size = 512;       ///< size of the returned candidate set
    /** Optional pool for fitness evaluation: the population is scored in
     *  score_chunk-sized slices across workers. Every score function in
     *  this repo is per-candidate independent (documented on
     *  CostModel::predict), so chunked results equal serial results
     *  exactly; the ScoreFn must be reentrant. Borrowed, may be null. */
    ThreadPool* score_pool = nullptr;
    /** Candidates per scoring slice: each worker receives one contiguous
     *  sub-batch, which a learned-model ScoreFn turns into one batched
     *  GEMM pass (TuneOptions::predict_batch feeds this in the policy
     *  loops). */
    size_t score_chunk = 64;
    /** Metrics sink for evo_*_total counters (borrowed, may be null).
     *  Pure accounting — never changes the GA trajectory. */
    obs::MetricsRegistry* metrics = nullptr;
};

/** A schedule with its fitness score (higher = better). */
struct ScoredSchedule
{
    Schedule sch;
    double score = 0.0;
};

/** Fitness: batch-scores a contiguous span of candidates (higher =
 *  predicted faster). Spans avoid per-candidate Schedule copies when the
 *  population is sliced across workers. */
using ScoreFn =
    std::function<std::vector<double>(std::span<const Schedule>)>;

/**
 * Evaluate @p score on @p candidates, slicing the batch into @p chunk
 * pieces across @p pool when one is given. Each worker gets a zero-copy
 * sub-span (chunk -> one batched GEMM for learned-model score functions);
 * slices are concatenated in order, so for any per-candidate-independent
 * score function the result is identical to score(candidates). With a
 * null @p pool the slices run serially but the chunk cap still applies —
 * it bounds the memory of one batched pass, not just the fan-out. A
 * single-chunk batch is one direct call.
 */
std::vector<double> scoreChunked(const ScoreFn& score,
                                 std::span<const Schedule> candidates,
                                 ThreadPool* pool, size_t chunk = 64);

/** Score-guided GA returning the all-time best candidates. */
class EvolutionarySearch
{
  public:
    EvolutionarySearch(const SubgraphTask& task, const DeviceSpec& device);

    /**
     * Run the GA.
     *
     * @param config  population / iteration settings
     * @param score   fitness function
     * @param seeds   schedules injected into the first generation (e.g.
     *                the task's measured incumbents)
     * @param rng     randomness source
     * @param n_evaluated  out: number of fitness evaluations performed
     * @return up to config.out_size distinct candidates, best first
     */
    std::vector<ScoredSchedule>
    run(const EvolutionConfig& config, const ScoreFn& score,
        const std::vector<Schedule>& seeds, Rng& rng,
        size_t* n_evaluated) const;

  private:
    const SubgraphTask* task_;
    const DeviceSpec* device_;
    ScheduleSampler sampler_;
    ScheduleMutator mutator_;
};

} // namespace pruner
