#pragma once

/**
 * @file evolution.hpp
 * Score-guided evolutionary search over schedules.
 *
 * This is the exploration engine shared by every search policy: Ansor /
 * TenSetMLP / TLP / MetaSchedule use it with a learned cost model as the
 * fitness function (scoring the *whole* population each iteration — the
 * expense Pruner attacks), and the Latent Schedule Explorer uses it with
 * the Symbol-based Analyzer as fitness.
 */

#include <functional>
#include <vector>

#include "sched/mutator.hpp"
#include "sched/sampler.hpp"

namespace pruner {

/** Configuration of the evolutionary search. */
struct EvolutionConfig
{
    size_t population = 256;     ///< individuals per generation
    int iterations = 4;          ///< generations after the initial scoring
    double mutation_prob = 0.85; ///< mutate vs crossover when breeding
    double elite_frac = 0.15;    ///< survivors copied unchanged
    size_t out_size = 512;       ///< size of the returned candidate set
};

/** A schedule with its fitness score (higher = better). */
struct ScoredSchedule
{
    Schedule sch;
    double score = 0.0;
};

/** Fitness: batch-scores candidates (higher = predicted faster). */
using ScoreFn =
    std::function<std::vector<double>(const std::vector<Schedule>&)>;

/** Score-guided GA returning the all-time best candidates. */
class EvolutionarySearch
{
  public:
    EvolutionarySearch(const SubgraphTask& task, const DeviceSpec& device);

    /**
     * Run the GA.
     *
     * @param config  population / iteration settings
     * @param score   fitness function
     * @param seeds   schedules injected into the first generation (e.g.
     *                the task's measured incumbents)
     * @param rng     randomness source
     * @param n_evaluated  out: number of fitness evaluations performed
     * @return up to config.out_size distinct candidates, best first
     */
    std::vector<ScoredSchedule>
    run(const EvolutionConfig& config, const ScoreFn& score,
        const std::vector<Schedule>& seeds, Rng& rng,
        size_t* n_evaluated) const;

  private:
    const SubgraphTask* task_;
    const DeviceSpec* device_;
    ScheduleSampler sampler_;
    ScheduleMutator mutator_;
};

} // namespace pruner
