#pragma once

/**
 * @file task_scheduler.hpp
 * Ansor's gradient-based task scheduler (used by Algorithm 1, line 8).
 *
 * Tuning rounds are allocated across a workload's subgraphs to minimize the
 * weighted end-to-end latency: each round the scheduler picks the task
 * whose estimated latency-reduction gradient (weight x incumbent latency x
 * recent improvement rate, plus an exploration bonus for under-tuned
 * tasks) is largest.
 *
 * Two front-ends share one ranking: nextTask() picks the single best task
 * (the classic serial loop) and nextTasks(k) picks the top-k distinct
 * tasks for a sharded multi-task round whose drafts verify through one
 * shared worker pool. nextTasks(1) draws exactly the same random numbers
 * and returns exactly the same task as nextTask().
 */

#include "ir/workload_registry.hpp"
#include "search/tuning_record.hpp"
#include "support/rng.hpp"

namespace pruner {

namespace obs {
class Counter;
class MetricsRegistry;
} // namespace obs

/** Complete serializable TaskScheduler state (for checkpoint/resume). */
struct TaskSchedulerState
{
    std::vector<std::vector<double>> history;
    std::vector<size_t> rounds;
    size_t round_robin_cursor = 0;
};

/** Gradient-based multi-task tuning scheduler. */
class TaskScheduler
{
  public:
    explicit TaskScheduler(const Workload& workload);

    /** Bind pick counters (sched_pick_*_total) to @p metrics. Pure
     *  accounting: binding never changes which tasks are picked or how
     *  many random numbers are drawn. nullptr unbinds. */
    void bindObs(obs::MetricsRegistry* metrics);

    /** Choose the task index to tune next. */
    size_t nextTask(const TuningRecordDb& records, Rng& rng);

    /**
     * Batch round API: choose up to @p k distinct task indices for one
     * sharded round, highest estimated gradient first. @p k is clamped to
     * [1, numTasks()]. During the initial round-robin pass a round takes
     * the next (up to) k unvisited tasks; afterwards one epsilon draw
     * decides whether the first slot is random, and the remaining slots go
     * to the top gradients. k == 1 is byte-identical to nextTask().
     */
    std::vector<size_t> nextTasks(size_t k, const TuningRecordDb& records,
                                  Rng& rng);

    /** Record that a round for task @p index finished with the given best
     *  latency (feeds the improvement-rate estimate). */
    void observe(size_t index, double best_latency);

    /** Seed the scheduler from warm-started records: tasks with a stored
     *  incumbent skip the initial round-robin pass (when every task has
     *  one) and start their improvement-rate history settled at that
     *  incumbent instead of being treated as untouched. */
    void warmStart(const TuningRecordDb& records);

    /**
     * Recent improvement-rate estimate for task @p index: the optimistic
     * prior until two rounds of history exist, then the last round's
     * relative incumbent improvement clamped to finite non-negative
     * values. The clamp matters: a zero or +inf history entry (an
     * all-failed round observes bestLatency() == +inf) would otherwise
     * yield a NaN rate, and since NaN compares false against every gain
     * the task would silently never be scheduled again.
     */
    double improvementRate(size_t index) const;

    size_t numTasks() const { return workload_->tasks.size(); }

    /** Snapshot the full picking state (history, per-task round counts,
     *  round-robin cursor) for a checkpoint. */
    TaskSchedulerState exportState() const;

    /** Restore a state captured against the same workload; subsequent
     *  picks match the original scheduler draw for draw. */
    void restoreState(const TaskSchedulerState& state);

  private:
    const Workload* workload_;
    /** Per task: best latency seen at the end of its last few rounds. */
    std::vector<std::vector<double>> history_;
    std::vector<size_t> rounds_;
    size_t round_robin_cursor_ = 0;
    /** Pick counters (null until bindObs; writes are null-safe). */
    obs::Counter* picks_roundrobin_ = nullptr;
    obs::Counter* picks_eps_ = nullptr;
    obs::Counter* picks_gradient_ = nullptr;
};

} // namespace pruner
