#pragma once

/**
 * @file task_scheduler.hpp
 * Ansor's gradient-based task scheduler (used by Algorithm 1, line 8).
 *
 * Tuning rounds are allocated across a workload's subgraphs to minimize the
 * weighted end-to-end latency: each round the scheduler picks the task
 * whose estimated latency-reduction gradient (weight x incumbent latency x
 * recent improvement rate, plus an exploration bonus for under-tuned
 * tasks) is largest.
 */

#include "ir/workload_registry.hpp"
#include "search/tuning_record.hpp"
#include "support/rng.hpp"

namespace pruner {

/** Gradient-based multi-task tuning scheduler. */
class TaskScheduler
{
  public:
    explicit TaskScheduler(const Workload& workload);

    /** Choose the task index to tune next. */
    size_t nextTask(const TuningRecordDb& records, Rng& rng);

    /** Record that a round for task @p index finished with the given best
     *  latency (feeds the improvement-rate estimate). */
    void observe(size_t index, double best_latency);

    /** Seed the scheduler from warm-started records: tasks with a stored
     *  incumbent skip the initial round-robin pass (when every task has
     *  one) and start their improvement-rate history at that incumbent
     *  instead of being treated as untouched. */
    void warmStart(const TuningRecordDb& records);

    size_t numTasks() const { return workload_->tasks.size(); }

  private:
    const Workload* workload_;
    /** Per task: best latency seen at the end of its last few rounds. */
    std::vector<std::vector<double>> history_;
    std::vector<size_t> rounds_;
    size_t round_robin_cursor_ = 0;
};

} // namespace pruner
