#pragma once

/**
 * @file record_log.hpp
 * Persistence for tuning records — the analog of TVM's JSON log files.
 *
 * A tuned workload's value is the set of best schedules found; persisting
 * measured records lets a deployment apply them without re-tuning, warm-
 * start later tuning sessions (the paper's offline scenario), or build
 * datasets incrementally. The format is line-oriented text:
 *
 *   <task-key>\t<task-hash>\t<schedule-record>\t<latency-seconds>
 *
 * Numbers are always formatted and parsed in the classic ("C") locale so
 * logs written on one machine load on any other regardless of the global
 * locale. This module is the line codec; the persistent ArtifactDb
 * (src/db/artifact_db.hpp) builds its sharded on-disk store on top of it.
 */

#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "search/tuning_record.hpp"

namespace pruner {

/** Serialize one record to a single log line. */
std::string recordToLine(const MeasuredRecord& record);

/**
 * One log line parsed without resolving the task: the schedule and latency
 * are reconstructed, the task is only identified by key and hash. Used by
 * stores that index records across tasks (ArtifactDb).
 */
struct RawRecordLine
{
    std::string task_key;
    uint64_t task_hash = 0;
    Schedule sch;
    double latency = 0.0;
};

/** Parse one log line task-independently. Returns true and fills @p out on
 *  success; malformed, truncated, or non-finite lines return false. */
bool lineToRawRecord(const std::string& line, RawRecordLine* out);

/**
 * Parse one log line against a set of known tasks (records referencing
 * unknown tasks are skipped — the schedule alone cannot reconstruct a
 * task). Returns true and fills @p out on success.
 */
bool lineToRecord(const std::string& line,
                  const std::vector<SubgraphTask>& known_tasks,
                  MeasuredRecord* out);

/** Append records to a log file (creates it if missing). */
void appendRecordLog(const std::string& path,
                     const std::vector<MeasuredRecord>& records);

/**
 * Load all records from @p path that reference one of @p known_tasks.
 * Malformed lines and unknown tasks are skipped; a missing file throws
 * FatalError.
 */
std::vector<MeasuredRecord>
loadRecordLog(const std::string& path,
              const std::vector<SubgraphTask>& known_tasks);

/**
 * Like loadRecordLog but a missing/unreadable file yields std::nullopt
 * instead of throwing, so warm-start-optional flows need no pre-existence
 * check. A present-but-partially-corrupt file still loads its good lines.
 */
std::optional<std::vector<MeasuredRecord>>
tryLoadRecordLog(const std::string& path,
                 const std::vector<SubgraphTask>& known_tasks);

/** Replay records into a TuningRecordDb (e.g. to warm-start tuning). */
void replayIntoDb(const std::vector<MeasuredRecord>& records,
                  TuningRecordDb* db);

} // namespace pruner
