#pragma once

/**
 * @file measure_cache.hpp
 * LRU cache of measurement results keyed by (task, schedule) content hash.
 *
 * Evolutionary search and the draft-then-verify loop re-visit schedules
 * (incumbent mutants, failed candidates re-proposed by later generations).
 * Re-measuring them on hardware would cost a full compile+measure trial for
 * information the tuner already has, so the Measurer consults this cache
 * first: hits return the previously measured latency and charge nothing to
 * the simulated clock. Failed launches (+inf) are cached too — resource
 * overruns are deterministic, so retrying them is pure waste.
 */

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pruner {

/** One cache entry as exported for persistence (db/artifact_db snapshots
 *  serialize these, keyed by the original hash pair). */
struct MeasureCacheEntry
{
    uint64_t task_hash = 0;
    uint64_t sched_hash = 0;
    double latency = 0.0; ///< +inf entries are cached failed launches
};

/** Thread-safe LRU map from (task hash, schedule hash) to latency. */
class MeasureCache
{
  public:
    /** @param capacity  max entries kept; 0 disables caching entirely. */
    explicit MeasureCache(size_t capacity = kDefaultCapacity);

    /** If present, stores the latency in @p latency, refreshes recency and
     *  returns true. Counts a hit or a miss. */
    bool lookup(uint64_t task_hash, uint64_t sched_hash, double* latency);

    /** Insert or refresh an entry, evicting the least recently used entry
     *  when full. */
    void insert(uint64_t task_hash, uint64_t sched_hash, double latency);

    size_t size() const;
    size_t capacity() const { return capacity_; }
    size_t hits() const;
    size_t misses() const;
    size_t evictions() const;
    void clear();

    /** All live entries, least recently used first. Does not count as a
     *  lookup (hit/miss counters unchanged). Persisted snapshots restore
     *  in canonical (task, schedule)-hash order instead — see
     *  ArtifactDb::loadMeasureCache. */
    std::vector<MeasureCacheEntry> exportEntries() const;

    /** Replace the cache contents with @p entries given least recently
     *  used first (the exportEntries order), reproducing the exact
     *  recency chain of the exporting cache. Entries beyond capacity are
     *  dropped from the front (the LRU end), as insertion would. Hit and
     *  miss counters are left unchanged. */
    void restoreEntries(const std::vector<MeasureCacheEntry>& entries);

    static constexpr size_t kDefaultCapacity = 1 << 16;

  private:
    struct Entry
    {
        uint64_t key = 0;
        uint64_t task_hash = 0;
        uint64_t sched_hash = 0;
        double latency = 0.0;
    };

    uint64_t combinedKey(uint64_t task_hash, uint64_t sched_hash) const;

    size_t capacity_;
    /** Front = most recently used. */
    std::list<Entry> lru_;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
    size_t hits_ = 0;
    size_t misses_ = 0;
    size_t evictions_ = 0;
    mutable std::mutex mutex_;
};

} // namespace pruner
