#pragma once

/**
 * @file measurer.hpp
 * On-device measurement stage: compiles and runs candidate programs on the
 * (simulated) target and charges the SimClock for compilation and
 * measurement, following the cost split of the paper's Tables 1 and 7.
 */

#include <vector>

#include "sim/gpu_simulator.hpp"
#include "support/sim_clock.hpp"

namespace pruner {

/** Measurement executor for one device. */
class Measurer
{
  public:
    /** @param device     target platform
     *  @param clock      simulated clock to charge (may be nullptr)
     *  @param seed       measurement-noise stream seed
     *  @param constants  calibrated per-trial costs */
    Measurer(const DeviceSpec& device, SimClock* clock, uint64_t seed,
             const CostConstants& constants = CostConstants::defaults());

    /** Measure candidates; +inf entries are failed launches. Charges
     *  compile+measurement cost per trial. */
    std::vector<double> measure(const SubgraphTask& task,
                                const std::vector<Schedule>& candidates);

    /** Adaptive variant (the Adatune baseline): early-terminated
     *  measurements cost @p time_scale of a full trial but carry
     *  @p extra_noise additional relative error. */
    std::vector<double> measureAdaptive(
        const SubgraphTask& task, const std::vector<Schedule>& candidates,
        double time_scale, double extra_noise);

    const GpuSimulator& simulator() const { return simulator_; }
    size_t totalTrials() const { return total_trials_; }
    size_t failedTrials() const { return failed_trials_; }

  private:
    GpuSimulator simulator_;
    SimClock* clock_;
    Rng rng_;
    CostConstants constants_;
    size_t total_trials_ = 0;
    size_t failed_trials_ = 0;
};

} // namespace pruner
