#pragma once

/**
 * @file measurer.hpp
 * On-device measurement stage: compiles and runs candidate programs on the
 * (simulated) target and charges the SimClock for compilation and
 * measurement, following the cost split of the paper's Tables 1 and 7.
 *
 * measureBatch() is the parallel hot path shared by every search policy:
 * candidates fan out across a ThreadPool with one derived Rng stream per
 * candidate, so results are bit-identical for any worker count, and an LRU
 * MeasureCache makes re-visited (task, schedule) pairs free.
 */

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/fault_plan.hpp"
#include "search/measure_cache.hpp"
#include "sim/gpu_simulator.hpp"
#include "support/sim_clock.hpp"
#include "support/thread_pool.hpp"

namespace pruner {

class SessionRecorder; // session event sink (src/replay/session_recorder.hpp)

/** One task's slice of a sharded multi-task measurement round (borrowed
 *  views; both pointers must outlive the measureRound call). */
struct RoundBatch
{
    const SubgraphTask* task = nullptr;
    const std::vector<Schedule>* candidates = nullptr;
};

/** Serializable mutable Measurer state (for checkpoint/resume): the
 *  serial-path noise stream, the per-batch seed cursor, and the fault
 *  plan's per-pair attempt counts. Everything else the Measurer holds is
 *  construction-fixed or borrowed wiring. */
struct MeasurerState
{
    RngState rng;
    uint64_t batch_index = 0;
    /** (pair key, attempts), sorted by key for a canonical encoding. */
    std::vector<std::pair<uint64_t, uint32_t>> fault_attempts;
};

/** Measurement executor for one device. */
class Measurer
{
  public:
    /** @param device     target platform
     *  @param clock      simulated clock to charge (may be nullptr)
     *  @param seed       measurement-noise stream seed
     *  @param constants  calibrated per-trial costs */
    Measurer(const DeviceSpec& device, SimClock* clock, uint64_t seed,
             const CostConstants& constants = CostConstants::defaults());

    /** Attach a worker pool for measureBatch (borrowed, may be nullptr =
     *  serial). Changing the pool never changes measured values. */
    void setThreadPool(ThreadPool* pool) { pool_ = pool; }

    /** Attach a measurement cache (borrowed, may be nullptr = uncached). */
    void setCache(MeasureCache* cache) { cache_ = cache; }

    /** Install a deterministic fault-injection plan (copied). The fault
     *  stream is a pure function of (plan seed, task hash, schedule hash,
     *  attempt) — identical at any worker count — and every injected
     *  outcome is recorded through the attached SessionRecorder. Injected
     *  transients (timeouts, flaky latencies) never enter the cache. */
    void setFaultPlan(const FaultPlan& plan) { fault_plan_ = plan; }
    const FaultPlan& faultPlan() const { return fault_plan_; }

    /** Attach a session recorder (borrowed, may be nullptr): every
     *  candidate outcome is emitted in deterministic order, after the
     *  worker phase, on the calling thread. */
    void setRecorder(SessionRecorder* recorder) { recorder_ = recorder; }

    /** Pin the worker count the simulated compile-overlap divisor uses
     *  (0, the default, follows the attached pool's size). Session replay
     *  pins this to the recorded worker count so the simulated clock is
     *  identical no matter how many real threads re-execute the log. */
    void setClockLanes(size_t lanes) { clock_lanes_ = lanes; }

    /** Emulate the device round-trip a real measurement blocks on: each
     *  simulated trial additionally sleeps this long on its worker thread.
     *  Used by benches to demonstrate measurement overlap; zero (the
     *  default) everywhere else. */
    void setTrialLatency(std::chrono::microseconds us) { trial_latency_ = us; }

    /** Rebind the trial counters (measure_*_total, fault_injected_*_total)
     *  to @p metrics — the canonical registration the tuning loops use so
     *  TuneResult and /metrics read the same numbers. nullptr rebinds to
     *  the measurer's private fallback registry (standalone use). Counts
     *  accrued before the rebind stay in the previous registry; bind
     *  before the first measurement. */
    void setMetrics(obs::MetricsRegistry* metrics);

    /** Attach a tracer (borrowed, may be nullptr): measureRound emits one
     *  "measure_round" span per call, stamped with simulated time. */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

    /** Measure candidates; +inf entries are failed launches. Charges
     *  compile+measurement cost per trial. (Legacy serial path: draws
     *  noise from one sequential stream.) */
    std::vector<double> measure(const SubgraphTask& task,
                                const std::vector<Schedule>& candidates);

    /**
     * Batched measurement: the parallel verify stage of the
     * draft-then-verify loop.
     *
     * Semantics (independent of pool presence and worker count):
     *  - candidate i draws noise from an Rng seeded by (per-batch seed,
     *    i, schedule hash) — bit-identical results serial vs parallel;
     *  - duplicate candidates within a batch share one simulation;
     *  - cache hits return the previously measured latency and charge
     *    nothing (re-visits are free).
     *
     * Clock model: compilation parallelizes across the host workers
     * (ceil(misses / workers) x compile_per_trial) while the device runs
     * measurements exclusively (misses x measure_per_trial).
     */
    std::vector<double> measureBatch(const SubgraphTask& task,
                                     const std::vector<Schedule>& candidates);

    /**
     * Sharded multi-task round: measure every task's batch through one
     * worker-pool pass, so the pool never drains at task boundaries.
     *
     * Values are bit-identical to calling measureBatch() once per entry in
     * the same order (each sub-batch consumes one per-batch seed and keeps
     * its own in-batch dedup), and — like measureBatch — independent of
     * pool presence and worker count. What changes is the accounting and
     * the wall-clock: host-side compilation overlaps across *all* the
     * round's cache misses (ceil(total_misses / workers) x
     * compile_per_trial, instead of one ceil per task), which is the
     * amortization a single-task round loop cannot get.
     *
     * Tasks in one round are expected to be distinct (TaskScheduler::
     * nextTasks guarantees it); duplicates across sub-batches are not
     * deduplicated within the round, only through the cache.
     */
    std::vector<std::vector<double>>
    measureRound(const std::vector<RoundBatch>& round);

    /** Adaptive variant (the Adatune baseline): early-terminated
     *  measurements cost @p time_scale of a full trial but carry
     *  @p extra_noise additional relative error. */
    std::vector<double> measureAdaptive(
        const SubgraphTask& task, const std::vector<Schedule>& candidates,
        double time_scale, double extra_noise);

    const GpuSimulator& simulator() const { return simulator_; }
    // The trial counters live in the bound MetricsRegistry (see
    // setMetrics); these getters read the current counter values, so they
    // keep working no matter which registry is bound.
    size_t totalTrials() const { return counters_.trials->value(); }
    /** Trials that returned +inf — natural launch failures plus injected
     *  launch failures and timeouts. */
    size_t failedTrials() const { return counters_.failed->value(); }
    /** Trials measureBatch answered from the cache. */
    size_t cacheHits() const { return counters_.cache_hits->value(); }
    /** Trials measureBatch actually simulated (cache misses). */
    size_t simulatedTrials() const { return counters_.simulated->value(); }
    /** Simulated attempts the fault plan turned into launch failures. */
    size_t injectedLaunchFailures() const
    {
        return counters_.injected_launch->value();
    }
    /** Simulated attempts the fault plan timed out. */
    size_t injectedTimeouts() const
    {
        return counters_.injected_timeout->value();
    }
    /** Simulated attempts the fault plan perturbed (flaky latency). */
    size_t injectedFlaky() const { return counters_.injected_flaky->value(); }
    /** All injected faults (launch + timeout + flaky). */
    size_t injectedFaults() const
    {
        return injectedLaunchFailures() + injectedTimeouts() +
               injectedFlaky();
    }
    /** Snapshot the mutable measurement state for a checkpoint. */
    MeasurerState exportState() const;

    /** Restore a state captured by a measurer constructed with the same
     *  (device, seed, constants); subsequent batches draw the exact same
     *  noise and fault streams as the original. */
    void restoreState(const MeasurerState& state);

    size_t workers() const { return pool_ != nullptr ? pool_->size() : 1; }
    /** Divisor of the simulated compile overlap (see setClockLanes). */
    size_t clockLanes() const
    {
        return clock_lanes_ != 0 ? clock_lanes_ : workers();
    }

  private:
    /** Handles into the bound registry (never null once bound). */
    struct MeasureCounters
    {
        obs::Counter* trials = nullptr;
        obs::Counter* failed = nullptr;
        obs::Counter* cache_hits = nullptr;
        obs::Counter* simulated = nullptr;
        obs::Counter* injected_launch = nullptr;
        obs::Counter* injected_timeout = nullptr;
        obs::Counter* injected_flaky = nullptr;
    };

    /** Fault draw for one simulated attempt of a pair: advances the
     *  per-pair attempt counter (sequential pre-pass only). */
    uint32_t nextAttempt(uint64_t task_hash, uint64_t sched_hash);

    /** Record one injected-fault outcome on the bound counters. */
    void countFault(FaultKind kind);

    GpuSimulator simulator_;
    SimClock* clock_;
    Rng rng_;
    CostConstants constants_;
    ThreadPool* pool_ = nullptr;
    MeasureCache* cache_ = nullptr;
    SessionRecorder* recorder_ = nullptr;
    obs::Tracer* tracer_ = nullptr;
    FaultPlan fault_plan_;
    /** Per-(task, schedule) simulated-attempt counts feeding the
     *  transient fault stream; only maintained while a plan is enabled. */
    std::unordered_map<uint64_t, uint32_t> fault_attempts_;
    std::chrono::microseconds trial_latency_{0};
    /** Base of the per-batch seed derivation, fixed at construction so
     *  measureBatch values never depend on interleaved measure() calls. */
    uint64_t batch_seed_base_;
    uint64_t batch_index_ = 0;
    size_t clock_lanes_ = 0;
    /** Fallback registry the counters live in until setMetrics rebinds
     *  them (standalone measurers in tests and benches). */
    obs::MetricsRegistry own_metrics_;
    MeasureCounters counters_;
};

/**
 * Per-tuning-run parallel-verify machinery: owns the optional worker pool
 * and the measurement cache, and attaches both to a Measurer. Every
 * policy's tune() loop builds one from TuneOptions so the wiring stays in
 * one place.
 */
class MeasureEnv
{
  public:
    /** @param measurer   the run's measurer to configure
     *  @param workers    TuneOptions::measure_workers (1 = serial)
     *  @param use_cache  TuneOptions::measure_cache */
    MeasureEnv(Measurer& measurer, int workers, bool use_cache);

    /** Detaches pool and cache from the measurer (they die with the env,
     *  so the measurer must not keep the borrowed pointers). */
    ~MeasureEnv();

    MeasureEnv(const MeasureEnv&) = delete;
    MeasureEnv& operator=(const MeasureEnv&) = delete;

    /** Worker pool for chunked scoring; nullptr when serial. */
    ThreadPool* pool() const { return pool_.get(); }
    const MeasureCache& cache() const { return cache_; }
    /** Mutable cache handle, for warm-starting it from a persisted
     *  snapshot (db/artifact_db) before the first measured batch. */
    MeasureCache* cacheMut() { return &cache_; }

  private:
    Measurer* measurer_;
    std::unique_ptr<ThreadPool> pool_;
    MeasureCache cache_;
};

} // namespace pruner
