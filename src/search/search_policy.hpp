#pragma once

/**
 * @file search_policy.hpp
 * The abstract tuner interface plus the shared evolution+cost-model tuning
 * loop used by the Ansor / TenSetMLP / TLP / MetaSchedule baselines.
 *
 * A SearchPolicy tunes a whole workload: each round it picks one subgraph
 * (gradient-based task scheduler), explores its schedule space, measures a
 * few candidates, and optionally updates its cost model online. All time
 * accounting flows through SimClock with the calibrated CostConstants.
 */

#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "ir/workload_registry.hpp"
#include "obs/round_stats.hpp"
#include "search/evolution.hpp"
#include "search/measurer.hpp"
#include "search/task_scheduler.hpp"
#include "search/tuning_record.hpp"
#include "support/sim_clock.hpp"

namespace pruner {

class ArtifactDb; // persistent artifact store (src/db/artifact_db.hpp)
class SessionRecorder; // session event sink (src/replay/session_recorder.hpp)

namespace obs {
class MetricsRegistry; // src/obs/metrics.hpp
class Tracer;          // src/obs/trace.hpp
} // namespace obs

/** Options shared by every tuner. */
struct TuneOptions
{
    int rounds = 200;           ///< tuning rounds (paper: 200)
    int measures_per_round = 10;///< programs measured per round (paper: 10)
    uint64_t seed = 1;
    bool online_training = true;///< online cost-model updates
    int train_epochs = 1;       ///< epochs per online update
    double eps_greedy = 0.05;   ///< random fraction of measured programs
    CostConstants constants = CostConstants::defaults();
    /** Host workers for the batched verify stage (candidate compilation
     *  and cost-model scoring fan out across them). 1 = fully serial.
     *  Measured values are bit-identical for any setting; only wall-clock
     *  and the simulated compile overlap change. */
    int measure_workers = 1;
    /** LRU (task, schedule) measurement cache: re-visited candidates are
     *  free. Deterministic for a fixed seed. */
    bool measure_cache = true;
    /** Cap on candidates per batched cost-model inference pass. The draft
     *  population and the verify stage are scored in predict_batch-sized
     *  slices: one slice = one worker's sub-batch = one packed GEMM
     *  through the model (src/nn's batched engine). Scores are
     *  byte-identical for any cap and worker count — rows flow through
     *  the same kernels with the same per-element accumulation order —
     *  so this knob only moves wall-clock and memory. */
    int predict_batch = 64;
    /** Tasks per sharded round (clamped to [1, numTasks]). Each round the
     *  gradient scheduler picks the top-K tasks; their drafts verify and
     *  measure through one shared pool pass, so host compilation overlaps
     *  across task boundaries and the pool never drains between tasks. A
     *  multi-task round charges a single SimClock task_switch_overhead
     *  for hopping across its K tasks; single-task rounds stay on one
     *  task and charge none. 1 (the default) reproduces the serial
     *  single-task loop byte-identically. */
    int tasks_per_round = 1;
    /** Overlap online cost-model updates with the next round's draft
     *  stage: the update trains a back-buffer clone of the model as a job
     *  on the verify pool, and its weights swap in atomically before the
     *  next verify pass (double-buffered, never torn). Results are
     *  identical to synchronous training — the clone carries the model's
     *  RNG lineage — so only wall-clock behaviour changes. Needs
     *  measure_workers > 1 (silently synchronous otherwise); MoA's
     *  Siamese update always stays synchronous. */
    bool async_training = false;
    /** Persistent artifact store (src/db): directory opened for this run.
     *  Empty = no persistence. */
    std::string artifact_db_path;
    /** Borrowed shared store (e.g. one per bench binary); takes precedence
     *  over artifact_db_path when non-null. Not owned. */
    ArtifactDb* artifact_db = nullptr;
    /** Replay persisted records into the run's TuningRecordDb before
     *  tuning — the paper's offline warm-start. Starts the search from the
     *  stored incumbents (changes the trajectory). */
    bool warm_start_records = false;
    /** Restore the persisted MeasureCache snapshot so previously simulated
     *  (task, schedule) pairs replay for free. Never changes measured
     *  values, only skips paid simulation. */
    bool reuse_measure_cache = true;
    /** Restore/persist cost-model weight checkpoints keyed by
     *  (policy, model, device). */
    bool reuse_model_checkpoint = false;
    /** Session event sink (borrowed, may be nullptr): records the run as a
     *  versioned event log a SessionReplayer can re-execute bit-exactly.
     *  See src/replay/. */
    SessionRecorder* recorder = nullptr;
    /** Deterministic fault-injection plan applied by the Measurer (default:
     *  disabled). The injected fault stream is a pure function of the plan
     *  and the candidate, so it is identical at any worker count and is
     *  captured in the session log. */
    FaultPlan fault_plan;
    /** Worker count the simulated compile-overlap divisor assumes (0 = use
     *  measure_workers). Session replay pins this to the recorded value so
     *  the simulated clock reproduces at any real measure_workers. */
    int clock_lanes = 0;
    /** Observability sinks (borrowed, may be nullptr). Pure outputs: they
     *  never change tuning results and are not written to the session log.
     *  tune() accumulates its per-run metrics into a private registry and
     *  merges the snapshot into @p metrics at the end, so one registry can
     *  aggregate many runs (a serve daemon's /metrics). The tracer receives
     *  the run's span/instant stream stamped with simulated time; its
     *  deterministic channel is byte-identical at any worker count. */
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    /** Collect per-round pipeline stats into TuneResult::round_stats.
     *  Deterministic; off by default to keep TuneResult small. */
    bool collect_round_stats = false;
    /** Draft-stage explorer registry key ("" = "evolution", the exact
     *  pre-interface draft loop; also "bayes", "gbt", "portfolio" — see
     *  src/search/explorer.hpp). Recorded on the session log's policycfg
     *  line, so recorded sessions replay under the same explorer. */
    std::string explorer;
    /** Comma-separated explorer options ("k=v,k=v", ExplorerSpec syntax),
     *  e.g. "arms=evolution+gbt,race_rounds=3" for the portfolio. */
    std::string explorer_config;
    /** Durably checkpoint the full resumable tuning state to
     *  @p checkpoint_path every this many completed rounds (and after the
     *  final round). 0 disables checkpointing. Pure IO: enabling it never
     *  changes tuning results. See src/replay/checkpoint.hpp. */
    int checkpoint_interval = 0;
    /** File the periodic checkpoint is written to (tmp + rename, CRC32
     *  framed). Required when checkpoint_interval > 0. */
    std::string checkpoint_path;
    /** Resume from a checkpoint file written by a compatible run (same
     *  policy, workload, device, and trajectory-shaping options). The
     *  resumed TuneResult is byte-identical to the uninterrupted run at
     *  any worker count. Empty = start fresh. */
    std::string resume_from;
};

/** One point of a tuning curve: simulated time vs best end-to-end
 *  latency. */
struct CurvePoint
{
    double time_s = 0.0;
    double latency_s = 0.0;
};

/** Result of tuning one workload. */
struct TuneResult
{
    std::string policy;
    std::vector<CurvePoint> curve;
    std::vector<double> best_per_task; ///< +inf where nothing measured
    double final_latency = 0.0;        ///< weighted end-to-end, +inf if
                                       ///< any task is unmeasured
    double total_time_s = 0.0;
    double exploration_s = 0.0;
    double training_s = 0.0;
    double measurement_s = 0.0;
    double compile_s = 0.0;
    size_t trials = 0;
    size_t failed_trials = 0;
    size_t cache_hits = 0;       ///< trials answered by the MeasureCache
    size_t simulated_trials = 0; ///< trials actually simulated
    size_t warm_records = 0;     ///< records replayed from the ArtifactDb
    size_t injected_faults = 0;  ///< faults the FaultPlan injected
    /** Per-round pipeline stats (empty unless
     *  TuneOptions::collect_round_stats). */
    std::vector<obs::RoundStats> round_stats;
    bool failed = false; ///< the policy could not tune this workload
    std::string failure_reason;

    /** Simulated time at which the curve first reaches @p latency;
     *  +inf if it never does. */
    double timeToReach(double latency) const;
};

/** Weighted end-to-end latency from the per-task incumbents; +inf if any
 *  task has no measurement. */
double workloadBest(const Workload& workload, const TuningRecordDb& db);

class ThreadPool;

/** Observability plumbing shared by every policy's tune() loop. */
namespace obs_detail {

/** Publish pool Execution-channel gauges (worker count, jobs, peak queue
 *  depth). No-op when @p pool is null. */
void exportPoolStats(obs::MetricsRegistry& metrics, const ThreadPool* pool);

/** Publish the dispatched nn kernel tiers as Execution-channel labels. */
void exportKernelTiers(obs::MetricsRegistry& metrics);

/** Fill TuneResult's counter fields (trials, cache_hits, warm_records,
 *  injected_faults, ...) from the per-run registry snapshot. */
void fillResultCounters(TuneResult& result,
                        const obs::MetricsRegistry& metrics);

} // namespace obs_detail

/** Abstract workload tuner. */
class SearchPolicy
{
  public:
    virtual ~SearchPolicy() = default;
    virtual std::string name() const = 0;
    virtual TuneResult tune(const Workload& workload,
                            const TuneOptions& options) = 0;

    /** Factory key a SessionReplayer rebuilds this policy under (the
     *  registry key, not necessarily the display name). */
    virtual std::string replayFactory() const { return name(); }
    /** Construction parameters the factory needs to rebuild an identical
     *  fresh policy (tab-separated key=value pairs; "" when the factory
     *  key alone suffices). */
    virtual std::string replayConfig() const { return ""; }
};

/** Configuration of the shared evolution-based tuning loop. */
struct EvoPolicyConfig
{
    EvolutionConfig evolution; ///< population/iterations of the GA
    /** If false, skip online training (offline mode with a pre-trained
     *  model, as in the paper's offline scenario). */
    bool online_training = true;
    /** Adaptive (early-terminated) measurement, the Adatune behaviour. */
    bool adaptive_measurement = false;
    double adaptive_time_scale = 0.6;
    double adaptive_extra_noise = 0.08;
};

/**
 * The shared tuning loop: evolutionary search scored by a learned cost
 * model over the full population. Ansor, TenSetMLP, TLP, MetaSchedule and
 * Adatune are this loop with different models/options.
 */
class EvoCostModelPolicy : public SearchPolicy
{
  public:
    EvoCostModelPolicy(std::string name, const DeviceSpec& device,
                       std::unique_ptr<CostModel> model,
                       EvoPolicyConfig config = {});

    std::string name() const override { return name_; }
    TuneResult tune(const Workload& workload,
                    const TuneOptions& options) override;

    std::string replayFactory() const override
    {
        return replay_factory_.empty() ? name_ : replay_factory_;
    }
    std::string replayConfig() const override { return replay_config_; }
    /** Install the replay identity of this policy instance. Called by the
     *  baseline factories (makeAnsor etc.) so a recorded session names the
     *  factory and the arguments that rebuild an identical fresh policy. */
    void setReplaySpec(std::string factory, std::string config)
    {
        replay_factory_ = std::move(factory);
        replay_config_ = std::move(config);
    }

    CostModel& model() { return *model_; }
    const DeviceSpec& device() const { return device_; }

  protected:
    /** Hook: can this policy tune the given task at all? Baselines with
     *  operator-coverage gaps override this (Figure 8's X marks). */
    virtual bool supportsTask(const SubgraphTask& task) const;

    /** Hook: scores candidates; default defers to the cost model. */
    virtual std::vector<double>
    scoreCandidates(const SubgraphTask& task,
                    std::span<const Schedule> candidates) const;

    std::string name_;
    DeviceSpec device_;
    std::unique_ptr<CostModel> model_;
    EvoPolicyConfig config_;
    std::string replay_factory_; ///< see setReplaySpec (empty = name_)
    std::string replay_config_;
};

/** Select up to @p n distinct unmeasured candidates: mostly best-first,
 *  an eps fraction random (Ansor's epsilon-greedy selection). */
std::vector<Schedule> selectForMeasurement(
    const std::vector<ScoredSchedule>& ranked, const SubgraphTask& task,
    const TuningRecordDb& db, const ScheduleSampler& sampler, size_t n,
    double eps, Rng& rng);

} // namespace pruner
