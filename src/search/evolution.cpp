#include "search/evolution.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "support/logging.hpp"

namespace pruner {

std::vector<double>
scoreChunked(const ScoreFn& score, std::span<const Schedule> candidates,
             ThreadPool* pool, size_t chunk)
{
    if (chunk == 0 || candidates.size() <= chunk) {
        return score(candidates);
    }
    const size_t n_chunks = (candidates.size() + chunk - 1) / chunk;
    if (pool == nullptr) {
        // Serial, but still chunk-capped: the cap bounds the memory of a
        // batched cost-model pass, which matters most in serial runs.
        // Slices concatenate in order, so values are identical.
        std::vector<double> out;
        out.reserve(candidates.size());
        for (size_t c = 0; c < n_chunks; ++c) {
            const size_t begin = c * chunk;
            const size_t len = std::min(chunk, candidates.size() - begin);
            const auto slice = score(candidates.subspan(begin, len));
            out.insert(out.end(), slice.begin(), slice.end());
        }
        return out;
    }
    std::vector<std::vector<double>> slices(n_chunks);
    pool->parallelFor(n_chunks, [&](size_t c) {
        const size_t begin = c * chunk;
        const size_t len =
            std::min(chunk, candidates.size() - begin);
        slices[c] = score(candidates.subspan(begin, len));
    });
    std::vector<double> out;
    out.reserve(candidates.size());
    for (auto& slice : slices) {
        out.insert(out.end(), slice.begin(), slice.end());
    }
    return out;
}

EvolutionarySearch::EvolutionarySearch(const SubgraphTask& task,
                                       const DeviceSpec& device)
    : task_(&task),
      device_(&device),
      sampler_(task, device),
      mutator_(task, device)
{
}

std::vector<ScoredSchedule>
EvolutionarySearch::run(const EvolutionConfig& config, const ScoreFn& score,
                        const std::vector<Schedule>& seeds, Rng& rng,
                        size_t* n_evaluated) const
{
    size_t evals = 0;
    size_t mutations = 0;
    size_t crossovers = 0;

    // Initial generation: seeds + random samples.
    std::vector<Schedule> population;
    population.reserve(config.population);
    for (const auto& seed : seeds) {
        if (population.size() >= config.population) {
            break;
        }
        Schedule copy = seed;
        if (sampler_.repair(copy)) {
            population.push_back(std::move(copy));
        }
    }
    const auto random_init =
        sampler_.sampleMany(rng, config.population - population.size());
    population.insert(population.end(), random_init.begin(),
                      random_init.end());

    // All-time best set, deduplicated by schedule hash.
    std::unordered_map<uint64_t, ScoredSchedule> best_set;
    auto record = [&](const Schedule& sch, double s) {
        auto [it, inserted] = best_set.try_emplace(sch.hash());
        if (inserted || s > it->second.score) {
            it->second = {sch, s};
        }
    };

    std::vector<double> scores;
    for (int iter = 0; iter <= config.iterations; ++iter) {
        scores = scoreChunked(score, population, config.score_pool,
                              config.score_chunk);
        PRUNER_CHECK(scores.size() == population.size());
        evals += population.size();
        for (size_t i = 0; i < population.size(); ++i) {
            record(population[i], scores[i]);
        }
        if (iter == config.iterations) {
            break;
        }

        // Selection weights: softmax over scores (temperature by spread).
        std::vector<size_t> order(population.size());
        for (size_t i = 0; i < order.size(); ++i) {
            order[i] = i;
        }
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return scores[a] > scores[b];
        });
        double mx = scores[order.front()];
        double mn = scores[order.back()];
        const double spread = std::max(mx - mn, 1e-12);
        std::vector<double> weights(population.size());
        for (size_t i = 0; i < population.size(); ++i) {
            weights[i] = std::exp(2.0 * (scores[i] - mx) / spread);
        }

        std::vector<Schedule> next;
        next.reserve(config.population);
        const size_t n_elite = std::max<size_t>(
            1, static_cast<size_t>(config.elite_frac *
                                   static_cast<double>(config.population)));
        for (size_t e = 0; e < n_elite && e < order.size(); ++e) {
            next.push_back(population[order[e]]);
        }
        while (next.size() < config.population) {
            const size_t a = rng.weightedIndex(weights);
            if (rng.bernoulli(config.mutation_prob)) {
                next.push_back(mutator_.mutate(population[a], rng));
                ++mutations;
            } else {
                const size_t b = rng.weightedIndex(weights);
                next.push_back(
                    mutator_.crossover(population[a], population[b], rng));
                ++crossovers;
            }
        }
        population = std::move(next);
    }

    std::vector<ScoredSchedule> out;
    out.reserve(best_set.size());
    for (auto& [hash, scored] : best_set) {
        out.push_back(std::move(scored));
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return a.score > b.score;
    });
    if (out.size() > config.out_size) {
        out.resize(config.out_size);
    }
    if (n_evaluated != nullptr) {
        *n_evaluated = evals;
    }
    if (config.metrics != nullptr) {
        config.metrics->counter("evo_runs_total")->add();
        config.metrics->counter("evo_generations_total")
            ->add(static_cast<uint64_t>(config.iterations) + 1);
        config.metrics->counter("evo_evaluations_total")->add(evals);
        config.metrics->counter("evo_mutations_total")->add(mutations);
        config.metrics->counter("evo_crossovers_total")->add(crossovers);
    }
    return out;
}

} // namespace pruner
