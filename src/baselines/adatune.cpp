#include "baselines/adatune.hpp"

#include "cost/mlp_cost_model.hpp"

namespace pruner {
namespace baselines {

namespace {

class AdatunePolicy : public EvoCostModelPolicy
{
  public:
    AdatunePolicy(const DeviceSpec& device, uint64_t seed,
                  EvoPolicyConfig config)
        : EvoCostModelPolicy("Adatune", device,
                             std::make_unique<MlpCostModel>(device, seed),
                             config)
    {
    }

  protected:
    bool
    supportsTask(const SubgraphTask& task) const override
    {
        return task.op_class != OpClass::ConvTranspose2d;
    }
};

} // namespace

std::unique_ptr<SearchPolicy>
makeAdatune(const DeviceSpec& device, uint64_t seed)
{
    EvoPolicyConfig config;
    config.online_training = true;
    config.adaptive_measurement = true;
    config.adaptive_time_scale = 0.55; // early-terminated measurements
    config.adaptive_extra_noise = 0.15;
    // AutoTVM-style manual templates cover a much smaller space than
    // Ansor's generated sketches: a small, shallow search stands in for
    // the restricted template space.
    config.evolution.population = 128;
    config.evolution.iterations = 3;
    return std::make_unique<AdatunePolicy>(device, seed, config);
}

} // namespace baselines
} // namespace pruner
