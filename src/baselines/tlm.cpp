#include "baselines/tlm.hpp"

#include "cost/mlp_cost_model.hpp"

namespace pruner {
namespace baselines {

namespace {

class TlmPolicy : public EvoCostModelPolicy
{
  public:
    TlmPolicy(const DeviceSpec& device, uint64_t seed,
              std::unordered_set<uint64_t> corpus,
              const std::vector<double>& pretrained,
              EvoPolicyConfig config)
        : EvoCostModelPolicy("TLM", device,
                             std::make_unique<MlpCostModel>(device, seed),
                             config),
          corpus_(std::move(corpus))
    {
        if (!pretrained.empty()) {
            model_->setParams(pretrained);
        }
    }

  protected:
    bool
    supportsTask(const SubgraphTask& task) const override
    {
        // A language model can only emit programs for subgraphs it has
        // seen; unseen subgraphs fail the whole workload.
        return corpus_.contains(task.hash());
    }

  private:
    std::unordered_set<uint64_t> corpus_;
};

} // namespace

std::unique_ptr<SearchPolicy>
makeTlm(const DeviceSpec& device, uint64_t seed,
        std::unordered_set<uint64_t> corpus_tasks,
        const std::vector<double>& pretrained)
{
    EvoPolicyConfig config;
    config.online_training = false; // TLM does not train online
    // TLM *generates* candidates from its learned distribution rather than
    // hill-climbing with measurement feedback: shallow generation rounds.
    config.evolution.population = 256;
    config.evolution.iterations = 2;
    return std::make_unique<TlmPolicy>(device, seed, std::move(corpus_tasks),
                                       pretrained, config);
}

} // namespace baselines
} // namespace pruner
