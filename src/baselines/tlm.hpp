#pragma once

/**
 * @file tlm.hpp
 * The TLM baseline: a tensor language model that generates schedules for
 * subgraphs it saw during pre-training. It cannot tune subgraphs outside
 * its pre-training corpus (the X marks of Figure 8), and it performs no
 * online cost-model training.
 */

#include <memory>
#include <unordered_set>

#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the TLM policy.
 *  @param corpus_tasks  hashes of the subgraphs in the pre-training corpus
 *  @param pretrained    pre-trained scorer weights (statement MLP) */
std::unique_ptr<SearchPolicy>
makeTlm(const DeviceSpec& device, uint64_t seed,
        std::unordered_set<uint64_t> corpus_tasks,
        const std::vector<double>& pretrained);

} // namespace baselines
} // namespace pruner
