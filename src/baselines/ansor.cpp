#include "baselines/ansor.hpp"

#include "cost/mlp_cost_model.hpp"
#include "replay/session_log.hpp"

namespace pruner {
namespace baselines {

std::unique_ptr<SearchPolicy>
makeAnsor(const DeviceSpec& device, uint64_t seed)
{
    EvoPolicyConfig config;
    config.online_training = true;
    // Ansor scores its whole evolutionary population with the learned
    // model every generation: 512 x (4+1) = 2,560 evaluations per round,
    // which at the calibrated per-candidate cost reproduces the ~35 min of
    // exploration in the paper's Table 1.
    config.evolution.population = 512;
    config.evolution.iterations = 4;
    auto policy = std::make_unique<EvoCostModelPolicy>(
        "Ansor", device, std::make_unique<MlpCostModel>(device, seed),
        config);
    policy->setReplaySpec("Ansor", "model_seed=" + hexU64(seed));
    return policy;
}

} // namespace baselines
} // namespace pruner
