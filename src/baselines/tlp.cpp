#include "baselines/tlp.hpp"

#include "cost/tlp_cost_model.hpp"
#include "replay/session_log.hpp"

namespace pruner {
namespace baselines {

std::unique_ptr<SearchPolicy>
makeTlp(const DeviceSpec& device, uint64_t seed,
        const std::vector<double>& pretrained, bool online_training)
{
    auto model = std::make_unique<TlpCostModel>(device, seed);
    if (!pretrained.empty()) {
        model->setParams(pretrained);
    }
    EvoPolicyConfig config;
    config.online_training = online_training;
    // TLP's Transformer is several times more expensive per candidate than
    // the MLP models, so its practical evolution budget is smaller.
    config.evolution.population = 256;
    config.evolution.iterations = 3;
    auto policy = std::make_unique<EvoCostModelPolicy>(
        "TLP", device, std::move(model), config);
    policy->setReplaySpec("TLP",
                          "model_seed=" + hexU64(seed) +
                              "\tonline=" + (online_training ? "1" : "0") +
                              "\tpretrained=" +
                              (pretrained.empty() ? "0" : "1"));
    return policy;
}

} // namespace baselines
} // namespace pruner
