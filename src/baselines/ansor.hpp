#pragma once

/**
 * @file ansor.hpp
 * The Ansor baseline: evolutionary search scored by a learned model that
 * is trained online from scratch, the full population scored every
 * generation (the exploration cost Table 1 quantifies).
 */

#include <memory>

#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the Ansor policy (online statement-feature model). */
std::unique_ptr<SearchPolicy> makeAnsor(const DeviceSpec& device,
                                        uint64_t seed);

} // namespace baselines
} // namespace pruner
