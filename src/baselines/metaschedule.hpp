#pragma once

/**
 * @file metaschedule.hpp
 * The MetaSchedule baseline: TVM's TensorCore-capable search framework.
 * Structurally it is the same evolution+learned-model loop as Ansor (the
 * paper integrates Pruner into it the same way), with a larger population
 * per round — thorough but expensive exploration.
 */

#include <memory>

#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the MetaSchedule policy (online statement-feature model). */
std::unique_ptr<SearchPolicy> makeMetaSchedule(const DeviceSpec& device,
                                               uint64_t seed);

} // namespace baselines
} // namespace pruner
