#include "baselines/tenset_mlp.hpp"

#include "cost/mlp_cost_model.hpp"
#include "replay/session_log.hpp"
#include "support/logging.hpp"

namespace pruner {
namespace baselines {

std::unique_ptr<SearchPolicy>
makeTenSetMlp(const DeviceSpec& device, uint64_t seed,
              const std::vector<double>& pretrained, bool online_training)
{
    auto model = std::make_unique<MlpCostModel>(device, seed);
    if (!pretrained.empty()) {
        model->setParams(pretrained);
    }
    EvoPolicyConfig config;
    config.online_training = online_training;
    auto policy = std::make_unique<EvoCostModelPolicy>(
        "TenSetMLP", device, std::move(model), config);
    policy->setReplaySpec("TenSetMLP",
                          "model_seed=" + hexU64(seed) +
                              "\tonline=" + (online_training ? "1" : "0") +
                              "\tpretrained=" +
                              (pretrained.empty() ? "0" : "1"));
    return policy;
}

std::vector<double>
pretrainCostModel(CostModel& model, const std::vector<MeasuredRecord>& data,
                  int epochs)
{
    PRUNER_CHECK_MSG(!data.empty(), "pretraining needs data");
    model.train(data, epochs);
    return model.getParams();
}

} // namespace baselines
} // namespace pruner
