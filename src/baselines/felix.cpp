#include "baselines/felix.hpp"

#include "cost/mlp_cost_model.hpp"

namespace pruner {
namespace baselines {

namespace {

/** Largest prime factor of n. */
int64_t
largestPrimeFactor(int64_t n)
{
    int64_t largest = 1;
    for (int64_t p = 2; p * p <= n; ++p) {
        while (n % p == 0) {
            largest = p;
            n /= p;
        }
    }
    return n > 1 ? n : largest;
}

class FelixPolicy : public EvoCostModelPolicy
{
  public:
    FelixPolicy(const DeviceSpec& device, uint64_t seed,
                EvoPolicyConfig config)
        : EvoCostModelPolicy("Felix", device,
                             std::make_unique<MlpCostModel>(device, seed),
                             config)
    {
    }

  protected:
    bool
    supportsTask(const SubgraphTask& task) const override
    {
        return felixSupportsTask(task);
    }
};

} // namespace

bool
felixSupportsTask(const SubgraphTask& task)
{
    for (const auto& axis : task.spatial) {
        if (largestPrimeFactor(axis.extent) > 13) {
            return false;
        }
    }
    for (const auto& axis : task.reduction) {
        if (largestPrimeFactor(axis.extent) > 13) {
            return false;
        }
    }
    // The relaxation also lacks rules for transposed convolutions.
    return task.op_class != OpClass::ConvTranspose2d;
}

std::unique_ptr<SearchPolicy>
makeFelix(const DeviceSpec& device, uint64_t seed)
{
    EvoPolicyConfig config;
    config.online_training = true;
    // Gradient descent == strongly local search: tiny population, many
    // mutation-only steps.
    config.evolution.population = 64;
    config.evolution.iterations = 8;
    config.evolution.mutation_prob = 1.0;
    return std::make_unique<FelixPolicy>(device, seed, config);
}

} // namespace baselines
} // namespace pruner
