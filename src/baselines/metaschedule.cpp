#include "baselines/metaschedule.hpp"

#include "cost/mlp_cost_model.hpp"

namespace pruner {
namespace baselines {

std::unique_ptr<SearchPolicy>
makeMetaSchedule(const DeviceSpec& device, uint64_t seed)
{
    EvoPolicyConfig config;
    config.online_training = true;
    config.evolution.population = 384; // larger per-round exploration
    config.evolution.iterations = 4;
    return std::make_unique<EvoCostModelPolicy>(
        "MetaSchedule", device, std::make_unique<MlpCostModel>(device, seed),
        config);
}

} // namespace baselines
} // namespace pruner
