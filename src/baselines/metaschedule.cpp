#include "baselines/metaschedule.hpp"

#include "cost/mlp_cost_model.hpp"
#include "replay/session_log.hpp"

namespace pruner {
namespace baselines {

std::unique_ptr<SearchPolicy>
makeMetaSchedule(const DeviceSpec& device, uint64_t seed)
{
    EvoPolicyConfig config;
    config.online_training = true;
    config.evolution.population = 384; // larger per-round exploration
    config.evolution.iterations = 4;
    auto policy = std::make_unique<EvoCostModelPolicy>(
        "MetaSchedule", device, std::make_unique<MlpCostModel>(device, seed),
        config);
    policy->setReplaySpec("MetaSchedule", "model_seed=" + hexU64(seed));
    return policy;
}

} // namespace baselines
} // namespace pruner
