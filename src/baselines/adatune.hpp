#pragma once

/**
 * @file adatune.hpp
 * The Adatune baseline: AutoTVM-style search with adaptive (statistically
 * early-terminated) hardware measurement — cheaper per trial but noisier,
 * and without schedule rules for transposed convolutions (the DCGAN
 * failure the paper marks in Figure 8).
 */

#include <memory>

#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the Adatune policy. */
std::unique_ptr<SearchPolicy> makeAdatune(const DeviceSpec& device,
                                          uint64_t seed);

} // namespace baselines
} // namespace pruner
