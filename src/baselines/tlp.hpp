#pragma once

/**
 * @file tlp.hpp
 * The TLP baseline: primitive-sequence Transformer cost model (data-hungry
 * by construction — see feature/primitive_features.hpp), pre-trained on a
 * TenSet-style dataset and frozen (offline) or fine-tuned online.
 */

#include <memory>

#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the TLP policy (offline by default, like the paper's setup). */
std::unique_ptr<SearchPolicy>
makeTlp(const DeviceSpec& device, uint64_t seed,
        const std::vector<double>& pretrained,
        bool online_training = false);

} // namespace baselines
} // namespace pruner
