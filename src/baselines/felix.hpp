#pragma once

/**
 * @file felix.hpp
 * The Felix baseline: gradient-descent search over a differentiable
 * relaxation of the schedule space.
 *
 * Felix rewrites tile factors as continuous variables and follows surrogate
 * gradients; this makes per-round exploration local (small population, many
 * small steps) and, as the paper observes, its feature/relaxation machinery
 * cannot handle operators with irregular shapes — those workloads fail
 * outright (the X marks of Figure 8).
 */

#include <memory>

#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the Felix policy. */
std::unique_ptr<SearchPolicy> makeFelix(const DeviceSpec& device,
                                        uint64_t seed);

/** True if Felix's relaxation supports this task (regular extents only:
 *  every axis extent must factor over small primes). Exposed for tests. */
bool felixSupportsTask(const SubgraphTask& task);

} // namespace baselines
} // namespace pruner
