#pragma once

/**
 * @file roller.hpp
 * The Roller baseline: rule-based rTile construction.
 *
 * Roller derives a small candidate set from empirical formulas — tiles
 * aligned to the warp size, memory transactions, and shared-memory banks —
 * scores them with its hardware micro-model, and measures only a handful
 * (the paper uses 50 trials per subgraph). It is very fast but can miss
 * optima that fall outside its alignment rules (Table 6's observation).
 */

#include <memory>

#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the Roller policy. @p trials_per_task matches the paper's 50. */
std::unique_ptr<SearchPolicy> makeRoller(const DeviceSpec& device,
                                         uint64_t seed,
                                         int trials_per_task = 50);

} // namespace baselines
} // namespace pruner
