#pragma once

/**
 * @file tenset_mlp.hpp
 * The TenSetMLP baseline: the statement-feature MLP pre-trained on a
 * TenSet-style dataset, used in the paper's offline tuning scenario
 * (pre-trained + fine-tuned on the target platform, then frozen during
 * search) and for the TenSet transfer strategy of Table 5.
 */

#include <memory>

#include "cost/cost_model.hpp"
#include "search/search_policy.hpp"

namespace pruner {
namespace baselines {

/** Build the TenSetMLP policy with pre-trained weights. If
 *  @p online_training is true the model keeps fine-tuning online (the
 *  "TenSet transfer" configuration of Table 5). */
std::unique_ptr<SearchPolicy>
makeTenSetMlp(const DeviceSpec& device, uint64_t seed,
              const std::vector<double>& pretrained,
              bool online_training = false);

/** Pre-train any cost model on a dataset; returns the flat weights. */
std::vector<double> pretrainCostModel(CostModel& model,
                                      const std::vector<MeasuredRecord>& data,
                                      int epochs);

} // namespace baselines
} // namespace pruner
