#include "baselines/roller.hpp"

#include <algorithm>
#include <cmath>

#include "core/symbol_analyzer.hpp"
#include "db/artifact_session.hpp"
#include "support/logging.hpp"

namespace pruner {
namespace baselines {

namespace {

/** Enumerate warp/bank-aligned rTile schedules for one task. */
std::vector<Schedule>
enumerateRTiles(const SubgraphTask& task, const DeviceSpec& device)
{
    std::vector<Schedule> out;
    const size_t n_sp = task.spatial.size();
    const size_t n_rd = task.reduction.size();

    // Aligned building blocks only: Roller never leaves the aligned grid.
    const std::vector<int64_t> thread_opts{32, 64, 128, 256};
    const std::vector<int64_t> reg_opts{1, 2, 4, 8};
    const std::vector<int64_t> k_opts{8, 16, 32};

    for (int64_t threads : thread_opts) {
        for (int64_t reg : reg_opts) {
            for (int64_t k1 : k_opts) {
                std::vector<SpatialSplit> spatial(n_sp);
                // Distribute threads over axes: the last axis (innermost in
                // memory for most operands) gets the contiguous share.
                int64_t remaining = threads;
                for (size_t a = 0; a < n_sp; ++a) {
                    const bool last = a + 1 == n_sp;
                    int64_t t = last ? remaining
                                     : std::max<int64_t>(
                                           1, static_cast<int64_t>(std::sqrt(
                                                  (double)remaining)));
                    // Round to a power of two for alignment.
                    int64_t p = 1;
                    while (p * 2 <= t) {
                        p *= 2;
                    }
                    t = p;
                    remaining = std::max<int64_t>(remaining / t, 1);
                    spatial[a].f[kThread] = t;
                    spatial[a].f[kVThread] = 1;
                    spatial[a].f[kInnerA] = reg;
                    spatial[a].f[kInnerB] = 1;
                }
                std::vector<ReductionSplit> reduction(n_rd);
                for (size_t r = 0; r < n_rd; ++r) {
                    reduction[r].f[1] = k1;
                    reduction[r].f[2] = 1;
                }
                Schedule sch(std::move(spatial), std::move(reduction),
                             /*unroll=*/64, /*vec=*/4,
                             /*cache_shared=*/n_rd > 0);
                sch.repairOuter(task);
                if (sch.valid(task, device.max_threads_per_block)) {
                    out.push_back(std::move(sch));
                }
            }
        }
    }
    return out;
}

/** The Roller policy: enumerate, rank with the micro perf model, measure
 *  the top candidates, keep the best. */
class RollerPolicy : public SearchPolicy
{
  public:
    RollerPolicy(const DeviceSpec& device, uint64_t seed, int trials)
        : device_(device), seed_(seed), trials_(trials), analyzer_(device)
    {
    }

    std::string name() const override { return "Roller"; }

    TuneResult
    tune(const Workload& workload, const TuneOptions& opts) override
    {
        TuneResult result;
        result.policy = name();
        SimClock clock;
        Rng rng(hashCombine(opts.seed, seed_));
        Measurer measurer(device_, &clock, hashCombine(seed_, 0x2011),
                          opts.constants);
        MeasureEnv env(measurer, opts.measure_workers, opts.measure_cache);
        TuningRecordDb db;

        // Roller has no learned model; only records and the measure cache
        // flow through the artifact store.
        ArtifactSession artifacts(opts.artifact_db, opts.artifact_db_path);
        if (artifacts.enabled()) {
            const WarmStartStats warm = artifacts.warmStart(
                workload, opts.warm_start_records ? &db : nullptr,
                opts.measure_cache && opts.reuse_measure_cache
                    ? env.cacheMut()
                    : nullptr,
                nullptr);
            result.warm_records = warm.records_replayed;
        }

        for (const auto& inst : workload.tasks) {
            const SubgraphTask& task = inst.task;
            auto candidates = enumerateRTiles(task, device_);
            // Rank with the empirical micro-model (analog of Roller's
            // rProgram performance estimation).
            std::vector<ScoredSchedule> ranked;
            ranked.reserve(candidates.size());
            for (auto& sch : candidates) {
                ranked.push_back({sch, analyzer_.score(task, sch)});
            }
            clock.charge(CostCategory::Exploration,
                         static_cast<double>(ranked.size()) *
                             opts.constants.sa_eval_per_candidate);
            std::sort(ranked.begin(), ranked.end(),
                      [](const auto& a, const auto& b) {
                          return a.score > b.score;
                      });
            ScheduleSampler sampler(task, device_);
            const auto to_measure = selectForMeasurement(
                ranked, task, db, sampler,
                static_cast<size_t>(trials_), /*eps=*/0.0, rng);
            const auto latencies = measurer.measureBatch(task, to_measure);
            for (size_t i = 0; i < to_measure.size(); ++i) {
                if (std::isfinite(latencies[i])) {
                    db.add({task, to_measure[i], latencies[i]});
                }
            }
            artifacts.onMeasured(task, to_measure, latencies);
            const double e2e = workloadBest(workload, db);
            if (std::isfinite(e2e)) {
                result.curve.push_back({clock.now(), e2e});
            }
        }

        result.best_per_task.reserve(workload.tasks.size());
        for (const auto& inst : workload.tasks) {
            result.best_per_task.push_back(db.bestLatency(inst.task));
        }
        result.final_latency = workloadBest(workload, db);
        result.total_time_s = clock.now();
        result.exploration_s = clock.total(CostCategory::Exploration);
        result.measurement_s = clock.total(CostCategory::Measurement);
        result.compile_s = clock.total(CostCategory::Compile);
        result.trials = measurer.totalTrials();
        result.failed_trials = measurer.failedTrials();
        result.cache_hits = measurer.cacheHits();
        result.simulated_trials = measurer.simulatedTrials();
        artifacts.finish(opts.measure_cache ? &env.cache() : nullptr,
                         nullptr);
        return result;
    }

  private:
    DeviceSpec device_;
    uint64_t seed_;
    int trials_;
    SymbolAnalyzer analyzer_;
};

} // namespace

std::unique_ptr<SearchPolicy>
makeRoller(const DeviceSpec& device, uint64_t seed, int trials_per_task)
{
    return std::make_unique<RollerPolicy>(device, seed, trials_per_task);
}

} // namespace baselines
} // namespace pruner
